// Scenario: a small multi-tenant fleet against one edge frontend. Twelve
// AlexNet devices (Poisson arrivals, 250 ms SLO) share the GPU through an
// EDF queue with admission control and suffix batching; shed requests
// degrade to on-device inference and push the senders' k up. Prints the
// fleet summary and the frontend's counters — the shortest tour of the
// serving layer (src/serve/).
//
// Telemetry tour: pass --trace out.json to capture the whole run as a
// Chrome trace (open chrome://tracing or https://ui.perfetto.dev and load
// the file); pass --metrics out.json to snapshot the metrics registry.
// Both runs are deterministic: same seed, byte-identical files.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/table.h"
#include "obs/telemetry.h"
#include "serve/fleet.h"

int main(int argc, char** argv) {
  using namespace lp;

  std::string trace_path, metrics_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[++i];
    else if (std::strcmp(argv[i], "--metrics") == 0) metrics_path = argv[++i];
  }

  const auto bundle = core::train_default_predictors();

  serve::FleetConfig config;
  config.duration = seconds(30);
  config.warmup = seconds(10);
  config.seed = 42;
  config.frontend.policy = serve::QueuePolicy::kEdf;
  config.frontend.admission_control = true;
  config.frontend.delay_budget_sec = 0.15;
  config.frontend.max_batch = 4;
  config.frontend.batch_window = milliseconds(2);

  serve::TenantSpec tenant;
  tenant.model = "alexnet";
  tenant.clients = 12;
  tenant.policy = core::Policy::kLoadPart;
  tenant.upload = net::BandwidthTrace::constant(mbps(100));
  tenant.download = net::BandwidthTrace::constant(mbps(100));
  tenant.request_gap = milliseconds(5);
  tenant.poisson_arrivals = true;
  tenant.slo_sec = 0.25;
  config.tenants.push_back(tenant);

  // The sink must outlive run_fleet(); tracing is only paid for when
  // --trace was asked for (null telemetry keeps the run bit-identical to
  // the uninstrumented binary).
  obs::Telemetry telemetry(/*tracing=*/!trace_path.empty());
  if (!trace_path.empty() || !metrics_path.empty())
    config.telemetry = &telemetry;

  std::printf(
      "12 AlexNet devices -> one frontend (EDF + admission, batch <= 4)\n"
      "over a 30 s run, steady state after 10 s\n\n");

  const auto result = serve::run_fleet(config, bundle);
  const auto s = result.summarize();

  Table table({"tenant", "requests", "mean(ms)", "p90(ms)", "adm p90(ms)",
               "shed", "queue wait(ms)", "p (modal)", "k"});
  table.add_row(s.table_row());
  table.print();

  std::printf(
      "\nFrontend: %llu submitted, %llu admitted, %llu shed; %llu GPU "
      "dispatches (%llu batched covering %llu requests)\n",
      static_cast<unsigned long long>(result.frontend.submitted),
      static_cast<unsigned long long>(result.frontend.admitted),
      static_cast<unsigned long long>(result.frontend.shed),
      static_cast<unsigned long long>(result.frontend.dispatches),
      static_cast<unsigned long long>(result.frontend.batched_dispatches),
      static_cast<unsigned long long>(result.frontend.batched_jobs));
  std::printf(
      "Expected: some requests shed and finished on-device (k rises via "
      "the reject backoff), admitted requests hold the 250 ms SLO, and a "
      "visible share of dispatches are coalesced batches.\n");

  // An unwritable output path is a hard error: scripts piping these files
  // into CI diffs must fail loudly, not read a stale artifact.
  int status = 0;
  if (!trace_path.empty()) {
    if (telemetry.trace()->write_chrome_json(trace_path)) {
      std::printf("\n[trace written to %s — load it in chrome://tracing]\n",
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                   trace_path.c_str());
      status = 1;
    }
  }
  if (!metrics_path.empty()) {
    if (telemetry.metrics().write_json(metrics_path)) {
      std::printf("[metrics written to %s]\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write metrics to '%s'\n",
                   metrics_path.c_str());
      status = 1;
    }
  }
  return status;
}
