// Serving-layer claims: under overload, deadline-aware queueing plus
// admission control beats FIFO-without-admission on tail latency for the
// requests it serves, and suffix batching raises served throughput.
//
// Both comparisons hold the offered load fixed (same tenants, same arrival
// processes, same seeds) and vary only the frontend configuration. A final
// section re-runs one configuration twice to show the record streams are
// bit-identical given the seed.
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/report.h"
#include "serve/fleet.h"

namespace {

using namespace lp;

void print_config_row(Table& table, obs::Report::Section& section,
                      const std::string& name,
                      const serve::FleetResult& result) {
  const auto s = result.summarize();
  const double steady_sec = to_seconds(result.duration - result.warmup);
  const double served_per_sec =
      static_cast<double>(s.admitted()) / steady_sec;
  table.add_row(
      {name, std::to_string(s.requests()), Table::num(s.admitted_p90_ms),
       Table::num(s.admitted_mean_ms), Table::num(s.p90_ms),
       Table::num(s.shed_rate * 100.0, 1) + "%",
       Table::num(s.slo_miss_rate * 100.0, 1) + "%",
       Table::num(served_per_sec, 1)});
  section.add_row({name, s.requests(), s.admitted_p90_ms, s.admitted_mean_ms,
                   s.p90_ms, s.shed_rate, s.slo_miss_rate, served_per_sec});
}

/// Overloaded fleet of load-oblivious clients: 32 AlexNet devices that keep
/// offloading no matter what (Neurosurgeon), so the offered load is the
/// same under every frontend policy.
serve::FleetConfig overload_config() {
  serve::FleetConfig config;
  config.duration = seconds(60);
  config.warmup = seconds(20);
  config.seed = 7;
  serve::TenantSpec spec;
  spec.model = "alexnet";
  spec.clients = 32;
  spec.policy = core::Policy::kNeurosurgeon;
  // Fast links so queueing (not transfer time) dominates the latency.
  spec.upload = net::BandwidthTrace::constant(mbps(100));
  spec.download = net::BandwidthTrace::constant(mbps(100));
  spec.request_gap = milliseconds(5);
  spec.poisson_arrivals = true;
  spec.slo_sec = 0.25;
  config.tenants.push_back(spec);
  return config;
}

void scheduling_comparison(const core::PredictorBundle& bundle,
                           obs::Report& report) {
  auto& section = report.section(
      "scheduling", {"frontend", "requests", "admitted_p90_ms",
                     "admitted_mean_ms", "p90_all_ms", "shed_rate",
                     "slo_miss_rate", "served_per_sec"});
  std::printf(
      "Overload scheduling: 32 load-oblivious AlexNet clients (Poisson "
      "arrivals, mean gap 5 ms, SLO 250 ms) vs frontend policy\n\n");
  Table table({"frontend", "requests", "admitted p90(ms)", "admitted mean",
               "p90 all(ms)", "shed", "SLO miss", "served/s"});

  {
    serve::FleetConfig config = overload_config();
    config.frontend.policy = serve::QueuePolicy::kFifo;
    config.frontend.admission_control = false;
    print_config_row(table, section, "FIFO, no admission",
                     serve::run_fleet(config, bundle));
  }
  {
    serve::FleetConfig config = overload_config();
    config.frontend.policy = serve::QueuePolicy::kEdf;
    config.frontend.admission_control = true;
    config.frontend.delay_budget_sec = 0.15;
    print_config_row(table, section, "EDF + admission (150 ms budget)",
                     serve::run_fleet(config, bundle));
  }
  {
    serve::FleetConfig config = overload_config();
    config.frontend.policy = serve::QueuePolicy::kSpjf;
    config.frontend.admission_control = true;
    config.frontend.delay_budget_sec = 0.15;
    print_config_row(table, section, "SPJF + admission (150 ms budget)",
                     serve::run_fleet(config, bundle));
  }
  table.print();
  std::printf(
      "Reading: FIFO without admission serves everything and lets the "
      "queue absorb the overload, so every admitted request pays the "
      "backlog. Admission sheds the excess at arrival (the shed requests "
      "degrade to on-device execution) and EDF orders what remains by "
      "deadline, cutting the admitted p90 severalfold at equal offered "
      "load.\n\n");
}

/// Homogeneous ResNet fleet pinned to one partition point so every suffix
/// job is batch-compatible; only the batching knobs vary.
serve::FleetConfig batching_config(std::size_t fixed_p) {
  serve::FleetConfig config;
  config.duration = seconds(60);
  config.warmup = seconds(20);
  config.seed = 21;
  config.runtime.fixed_p = fixed_p;
  serve::TenantSpec spec;
  spec.model = "resnet18";
  spec.clients = 16;
  spec.policy = core::Policy::kFixedPoint;
  spec.upload = net::BandwidthTrace::constant(mbps(100));
  spec.download = net::BandwidthTrace::constant(mbps(100));
  spec.request_gap = milliseconds(2);
  config.tenants.push_back(spec);
  return config;
}

void batching_comparison(const core::PredictorBundle& bundle,
                         obs::Report& report) {
  auto& section = report.section(
      "batching", {"frontend", "served_per_sec", "admitted_p90_ms",
                   "batched_share", "dispatches"});
  // Full offload (p = 0): every client streams the input frame and the GPU
  // runs the whole dispatch-dominated graph, so the GPU is the bottleneck
  // and coalescing identical suffixes is where the win is.
  const std::size_t fixed_p = 0;
  std::printf(
      "Suffix batching: 16 ResNet18 clients pinned at p = 0 (full "
      "offload, 100 Mbps links, request every 2 ms)\n\n");
  Table table({"frontend", "served/s", "admitted p90(ms)", "batched share",
               "dispatches"});
  for (const std::size_t max_batch : {std::size_t{1}, std::size_t{4},
                                      std::size_t{8}}) {
    serve::FleetConfig config = batching_config(fixed_p);
    config.frontend.max_batch = max_batch;
    config.frontend.batch_window =
        max_batch > 1 ? milliseconds(2) : DurationNs{0};
    const auto result = serve::run_fleet(config, bundle);
    const auto s = result.summarize();
    const double steady_sec = to_seconds(result.duration - result.warmup);
    const double batched_share =
        result.frontend.served > 0
            ? 100.0 * static_cast<double>(result.frontend.batched_jobs) /
                  static_cast<double>(result.frontend.served)
            : 0.0;
    const std::string label =
        max_batch == 1 ? std::string("no batching")
                       : "batch <= " + std::to_string(max_batch) + ", 2 ms";
    const double served_per_sec =
        static_cast<double>(s.admitted()) / steady_sec;
    table.add_row({label, Table::num(served_per_sec, 1),
                   Table::num(s.admitted_p90_ms),
                   Table::num(batched_share, 1) + "%",
                   std::to_string(result.frontend.dispatches)});
    section.add_row({label, served_per_sec, s.admitted_p90_ms,
                     batched_share / 100.0,
                     static_cast<std::size_t>(result.frontend.dispatches)});
  }
  table.print();
  std::printf(
      "Reading: each coalesced dispatch pays the per-op framework dispatch "
      "once for the whole batch, so the GPU serves several suffixes in "
      "little more than the time of one — served/s rises with the batch "
      "bound while the per-request latency also drops because the queue "
      "drains faster.\n\n");
}

void determinism_check(const core::PredictorBundle& bundle,
                       obs::Report& report) {
  serve::FleetConfig config = overload_config();
  config.frontend.policy = serve::QueuePolicy::kEdf;
  config.frontend.admission_control = true;
  config.duration = seconds(20);
  config.warmup = seconds(5);
  const auto a = serve::run_fleet(config, bundle);
  const auto b = serve::run_fleet(config, bundle);
  bool identical = a.clients.size() == b.clients.size();
  std::size_t records = 0;
  for (std::size_t i = 0; identical && i < a.clients.size(); ++i) {
    const auto& ra = a.clients[i].records;
    const auto& rb = b.clients[i].records;
    identical = ra.size() == rb.size();
    records += ra.size();
    for (std::size_t j = 0; identical && j < ra.size(); ++j)
      identical = ra[j].start == rb[j].start && ra[j].p == rb[j].p &&
                  ra[j].total_sec == rb[j].total_sec &&
                  ra[j].outcome == rb[j].outcome;
  }
  std::printf("Determinism: two runs with seed %llu -> %zu records, %s\n",
              static_cast<unsigned long long>(config.seed), records,
              identical ? "bit-identical" : "DIVERGED");
  report.set("determinism_records", records);
  report.set("deterministic", identical);
}

}  // namespace

int main(int argc, char** argv) {
  const auto bundle = core::train_default_predictors();
  lp::obs::Report report("fleet_scheduling");
  scheduling_comparison(bundle, report);
  batching_comparison(bundle, report);
  determinism_check(bundle, report);
  report.write_json(argc > 1 ? argv[1] : "BENCH_fleet.json");
  report.maybe_write_csv_env();
  return 0;
}
