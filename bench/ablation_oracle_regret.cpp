// Ablation: regret against the per-condition oracle.
//
// For each (model, condition) an oracle sweeps every reachable partition
// point with the FixedPoint policy and picks the best *achieved* mean
// latency — the strongest static competitor possible. LoADPart's regret
// is how far above that its dynamic decisions land, including every real
// overhead the oracle does not pay (probing, k lag, cache misses).
#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "common/table.h"
#include "core/system.h"
#include "models/zoo.h"

namespace {

using namespace lp;

struct Condition {
  const char* label;
  double bw_mbps;
  hw::LoadLevel level;
};

double run_mean(const graph::Graph& model,
                const core::PredictorBundle& bundle, core::Policy policy,
                std::size_t fixed_p, const Condition& cond) {
  core::ExperimentConfig config;
  config.policy = policy;
  config.runtime.fixed_p = fixed_p;
  config.upload = net::BandwidthTrace::constant(mbps(cond.bw_mbps));
  config.load_schedule = {{0, cond.level}};
  config.duration = seconds(20);
  config.warmup = seconds(4);
  config.seed = 37;
  return core::run_experiment(model, bundle, config).mean_latency_sec();
}

}  // namespace

int main() {
  const auto bundle = core::train_default_predictors();
  const Condition conditions[] = {
      {"8 Mbps / idle", 8, hw::LoadLevel::k0},
      {"8 Mbps / 100%(h)", 8, hw::LoadLevel::k100h},
      {"2 Mbps / idle", 2, hw::LoadLevel::k0},
      {"32 Mbps / 100%(h)", 32, hw::LoadLevel::k100h},
  };

  std::printf(
      "Oracle regret: LoADPart vs the best fixed partition point per "
      "condition (exhaustive FixedPoint sweep)\n\n");

  for (const char* name : {"alexnet", "squeezenet"}) {
    const auto model = models::make_model(name);
    std::printf("%s\n", name);
    Table table({"condition", "LoADPart(ms)", "oracle(ms)", "oracle p",
                 "regret"});
    for (const auto& cond : conditions) {
      const double lp_ms =
          run_mean(model, bundle, core::Policy::kLoadPart, 0, cond) * 1e3;

      double best_ms = std::numeric_limits<double>::infinity();
      std::size_t best_p = 0;
      // Sweep every cut whose transmission is not larger than the input
      // (the only candidates that can ever win; "available" points in the
      // paper's wording) plus local inference.
      const core::GraphCostProfile profile(model, bundle);
      for (std::size_t p = 0; p <= model.n(); ++p) {
        if (p < model.n() && profile.s(p) > profile.s(0)) continue;
        const double ms =
            run_mean(model, bundle, core::Policy::kFixedPoint, p, cond) *
            1e3;
        if (ms < best_ms) {
          best_ms = ms;
          best_p = p;
        }
      }
      table.add_row({cond.label, Table::num(lp_ms), Table::num(best_ms),
                     std::to_string(best_p),
                     Table::num((lp_ms / best_ms - 1.0) * 100.0, 1) + "%"});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Reading: single-digit regret means the light-weight O(n) decision "
      "with probed bandwidth and windowed k tracks the per-condition "
      "optimum closely; the residual is probing overhead and the k/"
      "bandwidth reaction lag.\n");
  return 0;
}
