// Table III: RMSE and MAPE of the trained inference-time prediction models
// on held-out test data, for both the edge server and the user-end device.
#include <cstdio>

#include "common/table.h"
#include "core/predictor.h"

int main() {
  using namespace lp;
  using flops::Device;

  std::vector<profile::TrainReport> reports;
  (void)core::train_default_predictors(1234, &reports);

  std::printf(
      "Table III: held-out accuracy of the NNLS linear predictors\n"
      "(RMSE in us, MAPE in %%; paper's values in parentheses are for the "
      "authors' hardware)\n\n");

  struct PaperRow {
    const char* kind;
    double edge_mape;
    double user_mape;
  };
  const PaperRow paper[] = {
      {"Conv", 16.71, 40.09},      {"DWConv", 41.58, 36.64},
      {"Matmul", 5.33, 8.54},      {"AvgPooling", 13.56, 19.29},
      {"MaxPooling", 34.23, 20.25}, {"BiasAdd", 7.40, 4.80},
      {"Elem-wise Add", 6.37, 4.82}, {"BatchNorm", 10.97, 9.36},
      {"ReLU", 12.59, 17.67},
  };

  Table table({"kind", "edge RMSE(us)", "edge MAPE", "(paper)",
               "user RMSE(us)", "user MAPE", "(paper)"});
  for (flops::ModelKind kind : flops::all_model_kinds()) {
    const profile::TrainReport* edge = nullptr;
    const profile::TrainReport* user = nullptr;
    for (const auto& r : reports) {
      if (r.kind != kind) continue;
      (r.device == Device::kEdge ? edge : user) = &r;
    }
    if (edge == nullptr || user == nullptr) continue;
    const auto name = flops::model_kind_name(kind);
    std::string edge_paper = "-", user_paper = "-";
    for (const auto& p : paper) {
      if (name == p.kind) {
        edge_paper = Table::num(p.edge_mape, 1) + "%";
        user_paper = Table::num(p.user_mape, 1) + "%";
      }
    }
    table.add_row({name, Table::num(edge->rmse_sec * 1e6, 2),
                   Table::num(edge->mape * 100.0, 1) + "%", edge_paper,
                   Table::num(user->rmse_sec * 1e6, 2),
                   Table::num(user->mape * 100.0, 1) + "%", user_paper});
  }
  table.print();
  std::printf(
      "\nReading: element-wise kinds are near-linear (low MAPE); conv and "
      "pooling carry the hardware nonlinearities linear models cannot "
      "express, hence the larger errors — the same pattern as the paper.\n");
  return 0;
}
