// The Figure 9 server-load schedule (Section V): computation load ramping
// 0% -> 30 -> 50 -> 70 -> 90 -> 100%(l) -> 100%(h) and back to idle over
// 280 s. Shared by fig9_load_timeseries and predictor_ablation so the
// paper figure and the forecasting ablation stress the identical trace.
#pragma once

#include <vector>

#include "core/system.h"

namespace lp::benchutil {

/// A labelled [begin, end) slice of the schedule for per-phase statistics.
struct LoadPhaseSpan {
  const char* label;
  TimeNs begin;
  TimeNs end;
};

inline const std::vector<core::LoadPhase>& fig9_schedule() {
  static const std::vector<core::LoadPhase> s = {
      {0, hw::LoadLevel::k0},
      {seconds(30), hw::LoadLevel::k30},
      {seconds(60), hw::LoadLevel::k50},
      {seconds(90), hw::LoadLevel::k70},
      {seconds(120), hw::LoadLevel::k90},
      {seconds(150), hw::LoadLevel::k100l},
      {seconds(190), hw::LoadLevel::k100h},
      {seconds(220), hw::LoadLevel::k0},  // recovery
  };
  return s;
}

inline const std::vector<LoadPhaseSpan>& fig9_phases() {
  static const std::vector<LoadPhaseSpan> p = {
      {"0%", 0, seconds(30)},
      {"30%", seconds(30), seconds(60)},
      {"50%", seconds(60), seconds(90)},
      {"70%", seconds(90), seconds(120)},
      {"90%", seconds(120), seconds(150)},
      {"100%(l)", seconds(150), seconds(190)},
      {"100%(h)", seconds(190), seconds(220)},
      {"recovery", seconds(220), seconds(280)},
  };
  return p;
}

inline constexpr DurationNs kFig9Duration = seconds(280);

}  // namespace lp::benchutil
