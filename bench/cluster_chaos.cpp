// Cluster chaos harness: partition tolerance of the control plane under
// lossy heartbeats, a mid-run server crash, and a lossy migration
// interconnect.
//
// Two arms see the identical offered load (same Zipf-skewed tenants, same
// seeds, same chaos schedule); only the failure-handling config differs:
//
//   robust — deadline failure detector (suspect after 2 missed heartbeats,
//            dead after 4), migration timeout + 2 retries, abort returns
//            the payload to the source, epoch fencing rejects zombie
//            deliveries, quorum loss degrades clients to local execution.
//            A check::ClusterAuditor re-proves cluster-wide request
//            conservation every heartbeat.
//   naive  — the pre-chaos oracle detector (trusts whatever snapshot gets
//            through) and fire-and-forget migration: a transfer that times
//            out is simply dropped (no retry, no return-to-source, no
//            fencing of the late copy).
//
// "Lost" counts admitted requests the cluster can no longer settle:
// stranded jobs (dropped mid-migration) plus zombie imports (late copies
// absorbed after the router moved on — double execution). The claim: the
// robust arm loses zero at every heartbeat/interconnect loss rate up to
// 50%, crash or no crash, while the naive arm measurably loses and
// double-executes at 20% loss.
//
// --smoke shrinks the run for CI. --trace PATH writes a Chrome trace of
// one robust 20%-loss crash run (CI runs it twice and byte-compares).
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "cluster/fleet.h"
#include "common/stats.h"
#include "common/table.h"
#include "obs/report.h"

namespace {

using namespace lp;

struct ChaosCell {
  double loss = 0.0;
  bool crash = false;
};

struct CellStats {
  double p90_ms = 0.0;
  double served_per_sec = 0.0;
  std::size_t failed = 0;
  std::size_t recovered_local = 0;
  std::uint64_t migrations = 0;
  std::uint64_t aborted = 0;
  std::uint64_t retries = 0;
  std::uint64_t stranded = 0;
  std::uint64_t zombies = 0;
  std::uint64_t fenced = 0;
  std::uint64_t false_reroutes = 0;
  std::uint64_t degrade_transitions = 0;
  double detect_ms = -1.0;  ///< time-to-detect the crash; -1 = n/a

  std::uint64_t lost() const { return stranded + zombies; }
};

/// Shared testbed: 3 servers, a Zipf(1.2)-skewed AlexNet population hot
/// enough to keep the rebalancer migrating, and the robust *client*
/// posture (timeout + retry + local fallback) in both arms — the contrast
/// under test is the control plane, not the client.
cluster::ClusterConfig base_config(DurationNs duration, DurationNs warmup) {
  cluster::ClusterConfig config;
  config.servers = 3;
  config.duration = duration;
  config.warmup = warmup;
  config.seed = 17;
  config.zipf_alpha = 1.2;
  config.router.heartbeat_period = milliseconds(250);
  config.router.rebalance = true;
  config.router.skew_threshold_sec = 0.05;
  config.router.min_dwell = seconds(1);
  config.runtime.fault.rpc_timeout_sec = 0.5;
  config.runtime.fault.max_retries = 2;
  config.runtime.fault.local_fallback = true;
  serve::TenantSpec spec;
  spec.model = "alexnet";
  spec.clients = 18;
  spec.policy = core::Policy::kNeurosurgeon;
  spec.upload = net::BandwidthTrace::constant(mbps(50));
  spec.download = net::BandwidthTrace::constant(mbps(50));
  spec.request_gap = milliseconds(2);
  config.tenants.push_back(spec);
  return config;
}

void apply_arm(cluster::ClusterConfig& config, bool robust) {
  config.router.migration_timeout = milliseconds(100);
  if (robust) {
    config.router.detector.mode =
        cluster::DetectorParams::Mode::kDeadline;
    config.router.detector.suspect_misses = 2;
    config.router.detector.dead_misses = 4;
    config.router.migration_max_retries = 2;
    config.router.migration_backoff.base_sec = 0.02;
    config.router.migration_backoff.max_sec = 0.2;
    config.router.return_to_source = true;
    config.degrade_to_local = true;
  } else {
    config.router.detector.mode = cluster::DetectorParams::Mode::kOracle;
    config.router.migration_max_retries = 0;
    config.router.return_to_source = false;
  }
}

void apply_chaos(cluster::ClusterConfig& config, const ChaosCell& cell,
                 TimeNs crash_at, TimeNs restart_at) {
  if (cell.loss > 0.0) {
    config.heartbeat_faults.resize(config.servers);
    for (auto& plan : config.heartbeat_faults)
      plan.packet_loss(0, config.duration, cell.loss);
    config.interconnect_faults.packet_loss(0, config.duration, cell.loss);
    // Chaos also congests the interconnect: a deep-queue payload now
    // exceeds the 100 ms transfer timeout, so the slow copy lands late —
    // the zombie the robust arm must fence and the naive arm absorbs.
    config.router.migration_bandwidth = mbps(0.1);
  }
  if (cell.crash) {
    config.server_faults.resize(1);
    config.server_faults[0].server_crash(crash_at, restart_at);
  }
}

CellStats run_cell(const cluster::ClusterConfig& base, bool robust,
                   const ChaosCell& cell, TimeNs crash_at,
                   TimeNs restart_at, const core::PredictorBundle& bundle,
                   check::ClusterAuditor* auditor) {
  cluster::ClusterConfig config = base;
  apply_arm(config, robust);
  apply_chaos(config, cell, crash_at, restart_at);
  if (auditor != nullptr) {
    config.on_audit = std::ref(*auditor);
    config.audit_period = config.router.heartbeat_period;
  }
  const auto result = cluster::run_cluster(config, bundle);

  CellStats stats;
  std::vector<double> admitted_ms;
  for (const core::InferenceRecord* rec : result.steady())
    if (rec->outcome == core::InferenceOutcome::kAdmitted)
      admitted_ms.push_back(rec->total_sec * 1e3);
  if (!admitted_ms.empty()) stats.p90_ms = percentile(admitted_ms, 90);
  stats.served_per_sec = static_cast<double>(admitted_ms.size()) /
                         to_seconds(result.duration - result.warmup);
  const auto summary = result.summarize();
  stats.failed = summary.failed();
  stats.recovered_local = summary.recovered();
  stats.migrations = result.migrations;
  stats.aborted = result.aborted_migrations;
  stats.retries = result.migration_retries;
  stats.stranded = result.stranded_jobs;
  stats.zombies = result.zombie_imports;
  stats.fenced = result.fenced_jobs;
  stats.false_reroutes = result.false_reroutes;
  stats.degrade_transitions = result.degrade_transitions;
  if (cell.crash)
    for (const auto& [server, at] : result.death_events)
      if (server == 0 && at >= crash_at) {
        stats.detect_ms = to_seconds(at - crash_at) * 1e3;
        break;
      }
  return stats;
}

void determinism_check(const cluster::ClusterConfig& base,
                       const ChaosCell& cell, TimeNs crash_at,
                       TimeNs restart_at,
                       const core::PredictorBundle& bundle,
                       obs::Report& report) {
  cluster::ClusterConfig config = base;
  apply_arm(config, /*robust=*/true);
  apply_chaos(config, cell, crash_at, restart_at);
  const auto a = cluster::run_cluster(config, bundle);
  const auto b = cluster::run_cluster(config, bundle);
  bool identical = a.clients.size() == b.clients.size() &&
                   a.migrations == b.migrations &&
                   a.aborted_migrations == b.aborted_migrations &&
                   a.migration_retries == b.migration_retries &&
                   a.death_events == b.death_events;
  std::size_t records = 0;
  for (std::size_t i = 0; identical && i < a.clients.size(); ++i) {
    const auto& ra = a.clients[i].records;
    const auto& rb = b.clients[i].records;
    identical = ra.size() == rb.size();
    records += ra.size();
    for (std::size_t j = 0; identical && j < ra.size(); ++j)
      identical = ra[j].start == rb[j].start && ra[j].p == rb[j].p &&
                  ra[j].total_sec == rb[j].total_sec &&
                  ra[j].outcome == rb[j].outcome;
  }
  std::printf(
      "Determinism: two chaos runs (20%% loss + crash, seed %llu) -> %zu "
      "records, %llu migrations, %s\n",
      static_cast<unsigned long long>(config.seed), records,
      static_cast<unsigned long long>(a.migrations),
      identical ? "bit-identical" : "DIVERGED");
  report.set("determinism_records", records);
  report.set("deterministic", identical);
}

int write_trace(const std::string& path,
                const core::PredictorBundle& bundle) {
  cluster::ClusterConfig config = base_config(seconds(16), seconds(4));
  apply_arm(config, /*robust=*/true);
  apply_chaos(config, {0.2, true}, seconds(7), seconds(12));
  obs::Telemetry telemetry(/*tracing=*/true);
  config.telemetry = &telemetry;
  cluster::run_cluster(config, bundle);
  if (!telemetry.trace()->write_chrome_json(path)) {
    std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                 path.c_str());
    return 1;
  }
  std::printf("[trace written to %s]\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_chaos.json";
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[++i];
    else
      out_path = argv[i];
  }

  const auto bundle = core::train_default_predictors();
  if (!trace_path.empty()) return write_trace(trace_path, bundle);

  const DurationNs duration = smoke ? seconds(16) : seconds(40);
  const DurationNs warmup = smoke ? seconds(4) : seconds(8);
  // The crash lands inside the steady-state window (off the heartbeat
  // grid, so time-to-detect is honest) and heals before the end, so
  // detection, rerouting and recovery are all on the record.
  const TimeNs crash_at =
      warmup + (duration - warmup) / 4 + milliseconds(73);
  const TimeNs restart_at = warmup + (duration - warmup) * 5 / 8;
  const std::vector<double> loss_rates =
      smoke ? std::vector<double>{0.0, 0.2, 0.5}
            : std::vector<double>{0.0, 0.1, 0.2, 0.5};

  const cluster::ClusterConfig base = base_config(duration, warmup);
  obs::Report report("cluster_chaos");
  auto& section = report.section(
      "chaos", {"loss", "crash", "arm", "lost", "stranded", "zombies",
                "failed", "recovered_local", "migrations", "aborted",
                "retries", "fenced", "false_reroutes", "degrades",
                "detect_ms", "p90_ms", "served_per_sec"});

  std::printf(
      "Cluster chaos: heartbeat + interconnect loss x crash schedule, "
      "robust (deadline detector, fencing, retry, return-to-source) vs "
      "naive (oracle detector, fire-and-forget migration)\n\n");

  check::ClusterAuditor auditor;
  std::uint64_t robust_lost = 0, naive_lost_at_20 = 0;
  std::uint64_t naive_lost_total = 0;
  double robust_detect_sum = 0.0;
  int robust_detect_count = 0;

  for (const bool crash : {false, true}) {
    Table table({"loss", "arm", "lost", "stranded", "zombies", "failed",
                 "recovered", "migrations", "aborted", "fenced",
                 "false_reroutes", "detect(ms)", "p90(ms)"});
    std::printf("--- %s ---\n",
                crash ? "crash: server 0 down mid-run" : "no crash");
    for (const double loss : loss_rates) {
      for (const bool robust : {true, false}) {
        const ChaosCell cell{loss, crash};
        const CellStats stats =
            run_cell(base, robust, cell, crash_at, restart_at, bundle,
                     robust ? &auditor : nullptr);
        if (robust) {
          robust_lost += stats.lost();
          if (stats.detect_ms >= 0.0) {
            robust_detect_sum += stats.detect_ms;
            ++robust_detect_count;
          }
        } else {
          naive_lost_total += stats.lost();
          if (crash && loss == 0.2) naive_lost_at_20 = stats.lost();
        }
        table.add_row(
            {Table::num(loss * 100.0, 0) + "%", robust ? "robust" : "naive",
             std::to_string(stats.lost()), std::to_string(stats.stranded),
             std::to_string(stats.zombies), std::to_string(stats.failed),
             std::to_string(stats.recovered_local),
             std::to_string(stats.migrations), std::to_string(stats.aborted),
             std::to_string(stats.fenced),
             std::to_string(stats.false_reroutes),
             stats.detect_ms < 0.0 ? "-" : Table::num(stats.detect_ms),
             Table::num(stats.p90_ms)});
        section.add_row({loss, crash, robust ? "robust" : "naive",
                         static_cast<std::size_t>(stats.lost()),
                         static_cast<std::size_t>(stats.stranded),
                         static_cast<std::size_t>(stats.zombies),
                         stats.failed, stats.recovered_local,
                         static_cast<std::size_t>(stats.migrations),
                         static_cast<std::size_t>(stats.aborted),
                         static_cast<std::size_t>(stats.retries),
                         static_cast<std::size_t>(stats.fenced),
                         static_cast<std::size_t>(stats.false_reroutes),
                         static_cast<std::size_t>(stats.degrade_transitions),
                         stats.detect_ms, stats.p90_ms,
                         stats.served_per_sec});
      }
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Reading: with fencing + timed retries + return-to-source the robust "
      "arm settles every admitted request at every loss rate (the "
      "conservation auditor re-proves it each heartbeat); the naive arm "
      "strands dropped transfers and absorbs late zombie copies, so "
      "admitted work is lost and double-executed once the interconnect "
      "gets lossy. (The naive arm's flatter p90 under chaos is "
      "survivorship: the deepest queues are exactly the payloads it "
      "dropped.)\n\n");
  std::printf(
      "Robust lost (all cells, must be 0): %llu | naive lost at 20%% loss "
      "+ crash (must be > 0): %llu | naive lost total: %llu | "
      "conservation audits: %llu | mean time-to-detect: %.0f ms\n",
      static_cast<unsigned long long>(robust_lost),
      static_cast<unsigned long long>(naive_lost_at_20),
      static_cast<unsigned long long>(naive_lost_total),
      static_cast<unsigned long long>(auditor.audits()),
      robust_detect_count > 0 ? robust_detect_sum / robust_detect_count
                              : -1.0);

  report.set("robust_lost", static_cast<std::size_t>(robust_lost));
  report.set("naive_lost_at_20",
             static_cast<std::size_t>(naive_lost_at_20));
  report.set("naive_lost_total",
             static_cast<std::size_t>(naive_lost_total));
  report.set("conservation_audits",
             static_cast<std::size_t>(auditor.audits()));
  report.set("mean_detect_ms",
             robust_detect_count > 0
                 ? robust_detect_sum / robust_detect_count
                 : -1.0);

  determinism_check(base, {0.2, true}, crash_at, restart_at, bundle,
                    report);

  report.write_json(out_path);
  report.maybe_write_csv_env();
  return 0;
}
