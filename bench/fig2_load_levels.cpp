// Figure 2: end-to-end full-offload inference latency of AlexNet, VGG16 and
// ResNet101 under background GPU load 0..100%(l) and 100%(h), sampled every
// 15 ms — distribution summary (mean / p10 / p90 / max) per level.
#include <cstdio>

#include "common/table.h"
#include "series_report.h"
#include "core/system.h"
#include "models/zoo.h"

int main() {
  using namespace lp;
  using core::ExperimentConfig;

  const auto bundle = core::train_default_predictors();

  std::printf(
      "Figure 2: full-offload latency under background GPU load\n"
      "(8 Mbps link; requests every 15 ms; ~20 s per level)\n\n");

  for (const char* name : {"alexnet", "vgg16", "resnet101"}) {
    const auto model = models::make_model(name);
    std::printf("%s (input %s)\n", name,
                model.input_desc().shape.to_string().c_str());
    Table table({"load", "mean(ms)", "p10(ms)", "p90(ms)", "max(ms)",
                 "samples"});
    double idle_mean = 0.0;
    for (hw::LoadLevel level : hw::all_load_levels()) {
      ExperimentConfig config;
      config.policy = core::Policy::kFullOffload;
      config.load_schedule = {{0, level}};
      config.duration = seconds(20);
      config.warmup = seconds(4);
      config.seed = 2024;
      const auto result = core::run_experiment(model, bundle, config);
      benchutil::maybe_dump_series(
          std::string("fig2_") + name + "_" +
              std::to_string(static_cast<int>(level)),
          result);
      const double mean = result.mean_latency_sec();
      if (level == hw::LoadLevel::k0) idle_mean = mean;
      table.add_row({hw::load_level_name(level), Table::num(mean * 1e3),
                     Table::num(result.percentile_latency_sec(10) * 1e3),
                     Table::num(result.percentile_latency_sec(90) * 1e3),
                     Table::num(result.max_latency_sec() * 1e3),
                     std::to_string(result.steady().size())});
    }
    table.print();
    std::printf("idle mean %.1f ms\n\n", idle_mean * 1e3);
  }
  std::printf(
      "Expected shape (paper): ~flat means below 50%%, inflation and heavy "
      "fluctuation at 90-100%%, and 100%%(h) well above 100%%(l).\n");
  return 0;
}
