// Claim bench: failure recovery under a scripted outage schedule.
//
// One FaultPlan hits an alexnet fleet with all three fault families:
//   * a fail-stop server crash (restarted with cold caches),
//   * a 30% packet-loss burst,
//   * a hard link blackout.
// Three recovery postures ride the same schedule (same seed, same plan):
//   * fail-stop       — timeout, no retries, no fallback: faults drop the
//                       request (what a naive client does today);
//   * retry           — timeout + 3 backoff retries, still no fallback;
//   * local-fallback  — timeout + 1 retry, then the suffix re-executes on
//                       the device from the boundary tensor it already
//                       holds, with a circuit breaker that pins the policy
//                       to local for a cooldown after repeated faults.
// Claims (exit 1 on violation):
//   1. fail-stop loses requests across the outage; local-fallback loses
//      none — every request terminates with a typed outcome;
//   2. retry alone already cuts the loss (packet loss is transient) but
//      cannot survive the crash window without a fallback;
//   3. during the server crash, local-fallback keeps the latency tail
//      bounded: the median rides at the local latency (the breaker) and
//      p99 is capped by the retry budget, not by the outage length;
//   4. the whole run is deterministic: a second run at the same seed
//      produces identical counters and percentiles.
// Emits the machine-readable summary to BENCH_fault.json (or argv[1]).
// --smoke shrinks the run for CI.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "hw/cpu_model.h"
#include "obs/report.h"
#include "serve/fleet.h"

namespace {

using namespace lp;

struct ModeResult {
  std::string name;
  std::size_t requests = 0;
  std::size_t admitted = 0;
  std::size_t recovered = 0;
  std::size_t failed = 0;
  std::size_t retries = 0;
  std::size_t breaker_forced = 0;
  std::uint64_t crashes = 0;
  std::uint64_t refused = 0;
  double mean_ms = 0.0;
  double p99_ms = 0.0;
  // Requests that *started* inside the crash window.
  std::size_t crash_requests = 0;
  std::size_t crash_failed = 0;
  double crash_median_ms = 0.0;
  double crash_p99_ms = 0.0;
};

ModeResult run_mode(const std::string& name,
                    const core::RuntimeParams::FaultToleranceParams& ft,
                    const fault::FaultPlan& plan, DurationNs total,
                    DurationNs warmup, TimeNs crash_begin, TimeNs crash_end,
                    const core::PredictorBundle& bundle) {
  serve::FleetConfig config;
  config.duration = total;
  config.warmup = warmup;
  config.profiler_period = seconds(2);
  config.seed = 77;
  config.faults = plan;
  config.runtime.fault = ft;
  serve::TenantSpec spec;
  spec.model = "alexnet";
  spec.clients = 4;
  spec.policy = core::Policy::kLoadPart;
  spec.upload = net::BandwidthTrace::constant(mbps(16));
  spec.download = net::BandwidthTrace::constant(mbps(16));
  spec.request_gap = milliseconds(15);
  config.tenants.push_back(spec);

  const auto result = serve::run_fleet(config, bundle);
  const auto summary = result.summarize();

  ModeResult m;
  m.name = name;
  m.requests = summary.requests();
  m.admitted = summary.admitted();
  m.recovered = summary.recovered();
  m.failed = summary.failed();
  m.retries = summary.retries();
  m.breaker_forced = summary.breaker_forced_local();
  m.crashes = result.frontend.crashes;
  m.refused = result.frontend.refused;
  m.mean_ms = summary.mean_ms;

  std::vector<double> all_ms, crash_ms;
  for (const auto* rec : result.steady()) {
    const bool lost = rec->outcome == core::InferenceOutcome::kFailed;
    if (!lost) all_ms.push_back(rec->total_sec * 1e3);
    if (rec->start >= crash_begin && rec->start < crash_end) {
      ++m.crash_requests;
      if (lost)
        ++m.crash_failed;
      else
        crash_ms.push_back(rec->total_sec * 1e3);
    }
  }
  if (!all_ms.empty()) m.p99_ms = percentile(all_ms, 99);
  if (!crash_ms.empty()) {
    m.crash_median_ms = percentile(crash_ms, 50);
    m.crash_p99_ms = percentile(crash_ms, 99);
  }
  return m;
}

bool same(const ModeResult& a, const ModeResult& b) {
  return a.requests == b.requests && a.failed == b.failed &&
         a.recovered == b.recovered && a.retries == b.retries &&
         a.mean_ms == b.mean_ms && a.p99_ms == b.p99_ms &&
         a.crash_p99_ms == b.crash_p99_ms;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lp;

  bool smoke = false;
  std::string out_path = "BENCH_fault.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      out_path = argv[i];
  }

  const auto bundle = core::train_default_predictors();
  const DurationNs total = smoke ? seconds(40) : seconds(120);
  const DurationNs warmup = smoke ? seconds(4) : seconds(10);

  // One schedule for every mode: crash, then packet loss, then blackout.
  const TimeNs crash_begin = total / 3;
  const TimeNs crash_end = total * 45 / 100;
  const TimeNs loss_begin = total / 2;
  const TimeNs loss_end = total * 58 / 100;
  const TimeNs dark_begin = total * 66 / 100;
  const TimeNs dark_end = total * 75 / 100;
  fault::FaultPlan plan;
  plan.server_crash(crash_begin, crash_end)
      .packet_loss(loss_begin, loss_end, 0.30)
      .link_blackout(dark_begin, dark_end);

  core::RuntimeParams::FaultToleranceParams failstop;
  failstop.rpc_timeout_sec = 0.5;
  failstop.max_retries = 0;
  failstop.local_fallback = false;

  core::RuntimeParams::FaultToleranceParams retry = failstop;
  retry.max_retries = 3;

  core::RuntimeParams::FaultToleranceParams fallback = failstop;
  fallback.max_retries = 1;
  fallback.local_fallback = true;
  fallback.breaker_failures = 3;
  fallback.breaker_cooldown_sec = 2.0;

  const double local_ms =
      to_seconds(hw::CpuModel().graph_time(models::make_model("alexnet"))) *
      1e3;

  std::printf(
      "Fault recovery: alexnet x4 clients, 16 Mbps, %s s run.\n"
      "Schedule: server crash [%.0f, %.0f) s, 30%% packet loss "
      "[%.0f, %.0f) s, link blackout [%.0f, %.0f) s. Local latency "
      "%.1f ms.\n\n",
      smoke ? "40" : "120", to_seconds(crash_begin), to_seconds(crash_end),
      to_seconds(loss_begin), to_seconds(loss_end), to_seconds(dark_begin),
      to_seconds(dark_end), local_ms);

  std::vector<ModeResult> modes;
  modes.push_back(run_mode("fail-stop", failstop, plan, total, warmup,
                           crash_begin, crash_end, bundle));
  modes.push_back(run_mode("retry", retry, plan, total, warmup, crash_begin,
                           crash_end, bundle));
  modes.push_back(run_mode("local-fallback", fallback, plan, total, warmup,
                           crash_begin, crash_end, bundle));
  // Determinism: same seed, same plan => identical results.
  const ModeResult again = run_mode("local-fallback", fallback, plan, total,
                                    warmup, crash_begin, crash_end, bundle);

  Table table({"mode", "requests", "lost", "recovered", "retries",
               "breaker-local", "p99(ms)", "crash p50(ms)", "crash p99(ms)"});
  for (const ModeResult& m : modes)
    table.add_row({m.name, std::to_string(m.requests),
                   std::to_string(m.failed), std::to_string(m.recovered),
                   std::to_string(m.retries),
                   std::to_string(m.breaker_forced), Table::num(m.p99_ms),
                   Table::num(m.crash_median_ms), Table::num(m.crash_p99_ms)});
  table.print();

  const ModeResult& fs = modes[0];
  const ModeResult& rt = modes[1];
  const ModeResult& fb = modes[2];

  // The retry budget bounds a recovered request: each attempt pays at most
  // the timeout plus the capped backoff, then the local suffix runs.
  const double budget_ms =
      (fallback.max_retries + 1) *
          (fallback.rpc_timeout_sec + fallback.backoff.max_sec) * 1e3 +
      3.0 * local_ms;

  struct Claim {
    const char* text;
    bool ok;
  };
  const Claim claims[] = {
      {"every mode saw the crash (crashes >= 1, refused > 0)",
       fs.crashes >= 1 && rt.crashes >= 1 && fb.crashes >= 1 &&
           fb.refused > 0},
      {"fail-stop loses requests across the outage", fs.failed > 0},
      {"retry cuts the loss but cannot survive the crash alone",
       rt.failed > 0 && rt.failed < fs.failed && rt.retries > 0},
      {"local-fallback loses nothing; every request terminates typed",
       fb.failed == 0 && fb.recovered > 0},
      {"the breaker pinned requests to local during the outage",
       fb.breaker_forced > 0},
      {"crash-window median rides at the local latency (breaker)",
       fb.crash_median_ms > 0.0 && fb.crash_median_ms < 3.0 * local_ms},
      {"crash-window p99 is bounded by the retry budget, not the outage",
       fb.crash_p99_ms > 0.0 && fb.crash_p99_ms < budget_ms &&
           fb.crash_p99_ms < 0.5 * to_seconds(crash_end - crash_begin) * 1e3},
      {"deterministic: identical rerun at the same seed",
       same(fb, again)},
  };

  bool ok = true;
  std::printf("\n");
  for (const Claim& c : claims) {
    std::printf("%s %s\n", c.ok ? "PASS" : "FAIL", c.text);
    ok = ok && c.ok;
  }

  obs::Report report("fault_recovery");
  report.set("local_ms", local_ms);
  report.set("deterministic", same(modes[2], again));
  report.set("claims_ok", ok);
  auto& mode_section = report.section(
      "modes", {"name", "requests", "lost", "recovered", "retries",
                "breaker_local", "crashes", "refused", "mean_ms", "p99_ms",
                "crash_requests", "crash_lost", "crash_p50_ms",
                "crash_p99_ms"});
  for (const ModeResult& m : modes)
    mode_section.add_row(
        {m.name, m.requests, m.failed, m.recovered, m.retries,
         m.breaker_forced, static_cast<std::size_t>(m.crashes),
         static_cast<std::size_t>(m.refused), m.mean_ms, m.p99_ms,
         m.crash_requests, m.crash_failed, m.crash_median_ms, m.crash_p99_ms});
  auto& claim_section = report.section("claims", {"claim", "ok"});
  for (const Claim& c : claims) claim_section.add_row({c.text, c.ok});
  report.write_json(out_path);
  report.maybe_write_csv_env();

  if (!ok) {
    std::printf("\nclaim check FAILED\n");
    return 1;
  }
  std::printf("\nall claims hold; wrote %s\n", out_path.c_str());
  return 0;
}
