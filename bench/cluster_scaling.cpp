// Cluster-layer claims: against a Zipf-skewed tenant population, dynamic
// least-loaded placement plus live session migration beats static
// consistent-hash placement on tail latency and served throughput, and the
// gap holds as the cluster scales out.
//
// Every configuration sees the identical offered load (same tenants, same
// think times, same seeds); only the router policy varies. The migrating
// configurations run under check::ClusterAuditor, so every heartbeat
// re-proves cluster-wide request conservation — a migration that lost or
// duplicated a request would abort the bench. A final section re-runs one
// configuration twice to show the record streams are bit-identical.
//
// --smoke shrinks the run for CI. --trace PATH writes a Chrome trace of
// one migrating 2-server run (CI runs it twice and byte-compares).
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "cluster/fleet.h"
#include "common/stats.h"
#include "common/table.h"
#include "obs/report.h"

namespace {

using namespace lp;

struct PolicyChoice {
  std::string name;
  cluster::Placement placement;
  bool rebalance;
};

struct RunStats {
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double served_per_sec = 0.0;
  double shed_rate = 0.0;
  std::uint64_t migrations = 0;
  std::uint64_t migrated_jobs = 0;
  std::size_t failed = 0;
};

/// Zipf-skewed population of load-oblivious AlexNet clients: client i
/// thinks for gap * (i + 1)^1.2, so the head of the population dominates
/// the offered load — the shape that makes load-blind placement collide.
cluster::ClusterConfig base_config(std::size_t servers, DurationNs duration,
                                   DurationNs warmup) {
  cluster::ClusterConfig config;
  config.servers = servers;
  config.duration = duration;
  config.warmup = warmup;
  config.seed = 17;
  config.zipf_alpha = 1.2;
  config.router.heartbeat_period = milliseconds(250);
  config.router.skew_threshold_sec = 0.05;
  config.router.min_dwell = seconds(1);
  serve::TenantSpec spec;
  spec.model = "alexnet";
  spec.clients = static_cast<int>(servers * 6);
  spec.policy = core::Policy::kNeurosurgeon;
  spec.upload = net::BandwidthTrace::constant(mbps(50));
  spec.download = net::BandwidthTrace::constant(mbps(50));
  spec.request_gap = milliseconds(2);
  config.tenants.push_back(spec);
  return config;
}

RunStats run_policy(const cluster::ClusterConfig& base,
                    const PolicyChoice& policy,
                    const core::PredictorBundle& bundle,
                    check::ClusterAuditor* auditor) {
  cluster::ClusterConfig config = base;
  config.router.placement = policy.placement;
  config.router.rebalance = policy.rebalance;
  if (auditor != nullptr) {
    config.on_audit = std::ref(*auditor);
    config.audit_period = milliseconds(500);
  }
  const auto result = cluster::run_cluster(config, bundle);

  RunStats stats;
  std::vector<double> admitted_ms;
  for (const core::InferenceRecord* rec : result.steady())
    if (rec->outcome == core::InferenceOutcome::kAdmitted)
      admitted_ms.push_back(rec->total_sec * 1e3);
  if (!admitted_ms.empty()) {
    stats.p50_ms = percentile(admitted_ms, 50);
    stats.p90_ms = percentile(admitted_ms, 90);
    stats.p99_ms = percentile(admitted_ms, 99);
  }
  const double steady_sec = to_seconds(result.duration - result.warmup);
  stats.served_per_sec =
      static_cast<double>(admitted_ms.size()) / steady_sec;
  const auto summary = result.summarize();
  stats.shed_rate = summary.shed_rate;
  stats.failed = summary.failed();
  stats.migrations = result.migrations;
  stats.migrated_jobs = result.migrated_jobs;
  return stats;
}

void determinism_check(const core::PredictorBundle& bundle,
                       obs::Report& report, DurationNs duration,
                       DurationNs warmup) {
  cluster::ClusterConfig config = base_config(2, duration, warmup);
  config.router.placement = cluster::Placement::kLeastLoaded;
  config.router.rebalance = true;
  const auto a = cluster::run_cluster(config, bundle);
  const auto b = cluster::run_cluster(config, bundle);
  bool identical = a.clients.size() == b.clients.size() &&
                   a.migrations == b.migrations &&
                   a.migrated_jobs == b.migrated_jobs;
  std::size_t records = 0;
  for (std::size_t i = 0; identical && i < a.clients.size(); ++i) {
    const auto& ra = a.clients[i].records;
    const auto& rb = b.clients[i].records;
    identical = ra.size() == rb.size();
    records += ra.size();
    for (std::size_t j = 0; identical && j < ra.size(); ++j)
      identical = ra[j].start == rb[j].start && ra[j].p == rb[j].p &&
                  ra[j].total_sec == rb[j].total_sec &&
                  ra[j].outcome == rb[j].outcome;
  }
  std::printf(
      "Determinism: two migrating runs with seed %llu -> %zu records, "
      "%llu migrations, %s\n",
      static_cast<unsigned long long>(config.seed), records,
      static_cast<unsigned long long>(a.migrations),
      identical ? "bit-identical" : "DIVERGED");
  report.set("determinism_records", records);
  report.set("deterministic", identical);
}

int write_trace(const std::string& path,
                const core::PredictorBundle& bundle) {
  cluster::ClusterConfig config =
      base_config(2, seconds(10), seconds(2));
  config.router.placement = cluster::Placement::kLeastLoaded;
  config.router.rebalance = true;
  obs::Telemetry telemetry(/*tracing=*/true);
  config.telemetry = &telemetry;
  cluster::run_cluster(config, bundle);
  if (!telemetry.trace()->write_chrome_json(path)) {
    std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                 path.c_str());
    return 1;
  }
  std::printf("[trace written to %s]\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_cluster.json";
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[++i];
    else
      out_path = argv[i];
  }

  const auto bundle = core::train_default_predictors();
  if (!trace_path.empty()) return write_trace(trace_path, bundle);

  const DurationNs duration = smoke ? seconds(16) : seconds(45);
  const DurationNs warmup = smoke ? seconds(4) : seconds(10);
  const std::vector<std::size_t> server_counts =
      smoke ? std::vector<std::size_t>{2, 4}
            : std::vector<std::size_t>{2, 4, 8};
  const std::vector<PolicyChoice> policies = {
      {"consistent-hash", cluster::Placement::kConsistentHash, false},
      {"least-loaded", cluster::Placement::kLeastLoaded, false},
      {"least-loaded + migration", cluster::Placement::kLeastLoaded, true},
  };

  obs::Report report("cluster_scaling");
  auto& section = report.section(
      "scaling", {"servers", "policy", "p50_ms", "p90_ms", "p99_ms",
                  "served_per_sec", "shed_rate", "migrations"});

  std::printf(
      "Cluster scaling: Zipf(1.2)-skewed AlexNet population (6 clients "
      "per server, gap 2 ms at the head) vs router policy\n\n");

  // Acceptance bookkeeping: at how many cluster sizes does the migrating
  // router beat static hashing on p90 *and* served/s?
  std::size_t p90_wins = 0, served_wins = 0;
  check::ClusterAuditor auditor;
  std::uint64_t total_migrations = 0;
  std::size_t migrating_failed = 0;

  for (const std::size_t servers : server_counts) {
    Table table({"policy", "p50(ms)", "p90(ms)", "p99(ms)", "served/s",
                 "shed", "migrations"});
    std::printf("--- %zu servers, %zu clients ---\n", servers, servers * 6);
    RunStats hash_stats, mig_stats;
    for (const PolicyChoice& policy : policies) {
      const cluster::ClusterConfig config =
          base_config(servers, duration, warmup);
      // The conservation auditor rides along wherever migration runs.
      const RunStats stats = run_policy(
          config, policy, bundle, policy.rebalance ? &auditor : nullptr);
      if (policy.placement == cluster::Placement::kConsistentHash)
        hash_stats = stats;
      if (policy.rebalance) {
        mig_stats = stats;
        total_migrations += stats.migrations;
        migrating_failed += stats.failed;
      }
      table.add_row({policy.name, Table::num(stats.p50_ms),
                     Table::num(stats.p90_ms), Table::num(stats.p99_ms),
                     Table::num(stats.served_per_sec, 1),
                     Table::num(stats.shed_rate * 100.0, 1) + "%",
                     std::to_string(stats.migrations)});
      section.add_row({servers, policy.name, stats.p50_ms, stats.p90_ms,
                       stats.p99_ms, stats.served_per_sec, stats.shed_rate,
                       static_cast<std::size_t>(stats.migrations)});
    }
    table.print();
    if (mig_stats.p90_ms < hash_stats.p90_ms) ++p90_wins;
    if (mig_stats.served_per_sec > hash_stats.served_per_sec)
      ++served_wins;
    std::printf("\n");
  }

  std::printf(
      "Reading: the hash ring places the Zipf-hot sessions blindly, so one "
      "server eats the head of the distribution and its queue sets the "
      "tail; least-loaded spreads the cold start and migration keeps "
      "chasing the skew as it develops, so p90 and served/s improve at "
      "equal offered load.\n\n");
  std::printf(
      "Migrating runs: %llu migrations, %llu conservation audits, "
      "%zu requests lost (must be 0); p90 wins %zu/%zu, served/s wins "
      "%zu/%zu\n",
      static_cast<unsigned long long>(total_migrations),
      static_cast<unsigned long long>(auditor.audits()),
      migrating_failed, p90_wins, server_counts.size(), served_wins,
      server_counts.size());

  report.set("p90_wins", p90_wins);
  report.set("served_wins", served_wins);
  report.set("server_counts", server_counts.size());
  report.set("total_migrations", static_cast<std::size_t>(total_migrations));
  report.set("conservation_audits",
             static_cast<std::size_t>(auditor.audits()));
  report.set("requests_lost", migrating_failed);

  determinism_check(bundle, report, duration / 2, warmup / 2);

  report.write_json(out_path);
  report.maybe_write_csv_env();
  return 0;
}
