// Ablation: prediction-model family (Section VI's related-work axis).
//
// NN-Meter predicts layer times with random forests, Habitat with MLPs;
// LoADPart chooses no-intercept NNLS linear models because the partition
// decision runs on the user-end device. This bench quantifies both sides
// of that trade against a GBT alternative trained on the wider candidate
// feature set: held-out accuracy per node kind, and the cost of pricing a
// whole model (what the device pays whenever predictors must be
// re-evaluated).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/table.h"
#include "core/predictor.h"
#include "hw/cpu_model.h"
#include "hw/gpu_model.h"
#include "models/zoo.h"
#include "profile/gbt_predictor.h"

namespace {

using namespace lp;
using flops::Device;

struct Families {
  profile::NodePredictor lr;
  profile::GbtPredictor gbt;
  std::vector<profile::TrainReport> lr_reports;
  std::vector<profile::TrainReport> gbt_reports;
};

Families& families() {
  static Families f = [] {
    const hw::CpuModel cpu;
    const hw::GpuModel gpu;
    profile::OfflineProfiler profiler(cpu, gpu, {});
    profile::Trainer trainer;
    std::vector<profile::TrainReport> lr_reports, gbt_reports;
    auto lr = trainer.train_all(profiler, Device::kUser, &lr_reports);
    auto gbt = profile::train_gbt_all(profiler, Device::kUser, &gbt_reports);
    return Families{std::move(lr), std::move(gbt), std::move(lr_reports),
                    std::move(gbt_reports)};
  }();
  return f;
}

void report_accuracy() {
  const auto& f = families();
  std::printf(
      "Held-out accuracy, user-end device: NNLS linear (Table II "
      "features) vs gradient-boosted trees (candidate features)\n\n");
  Table table({"kind", "LR MAPE", "GBT MAPE"});
  for (std::size_t i = 0; i < f.lr_reports.size(); ++i) {
    table.add_row({flops::model_kind_name(f.lr_reports[i].kind),
                   Table::num(f.lr_reports[i].mape * 100.0, 1) + "%",
                   Table::num(f.gbt_reports[i].mape * 100.0, 1) + "%"});
  }
  table.print();
  std::printf(
      "\nTiming below: pricing every node of AlexNet with each family — "
      "the work a re-evaluation of the predictors costs the device.\n\n");
}

void bm_price_model_lr(benchmark::State& state) {
  const auto& f = families();
  const auto model = models::alexnet();
  for (auto _ : state) {
    double total = 0.0;
    for (std::size_t i = 1; i <= model.n(); ++i)
      total += f.lr.predict_seconds(
          flops::config_of(model, model.backbone()[i]));
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(bm_price_model_lr);

void bm_price_model_gbt(benchmark::State& state) {
  const auto& f = families();
  const auto model = models::alexnet();
  for (auto _ : state) {
    double total = 0.0;
    for (std::size_t i = 1; i <= model.n(); ++i)
      total += f.gbt.predict_seconds(
          flops::config_of(model, model.backbone()[i]));
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(bm_price_model_gbt);

}  // namespace

int main(int argc, char** argv) {
  report_accuracy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\nReading: the GBT narrows the conv/pooling gap (it can bend around "
      "the hardware nonlinearities) but costs far more per evaluation and "
      "cannot express the exact zero-at-zero behaviour NNLS guarantees — "
      "the paper's trade for resource-constrained devices.\n");
  return 0;
}
