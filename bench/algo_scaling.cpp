// Section III-D claim: Algorithm 1 decides in O(n) while the DADS-style
// min cut costs ~O(n^3), yet finds the same-latency partitions on the
// evaluation DNNs. Microbenchmarks both decision procedures per model and
// prints the decision-quality comparison.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "common/table.h"
#include "core/algorithm.h"
#include "core/dads.h"
#include "models/zoo.h"

namespace {

using namespace lp;

const core::PredictorBundle& bundle() {
  static const core::PredictorBundle b = core::train_default_predictors();
  return b;
}

const core::GraphCostProfile& profile_of(const std::string& name) {
  static std::map<std::string, core::GraphCostProfile> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    static std::map<std::string, graph::Graph> graphs;
    auto [git, inserted] = graphs.emplace(name, models::make_model(name));
    it = cache.emplace(name, core::GraphCostProfile(git->second, bundle()))
             .first;
  }
  return it->second;
}

void report_equivalence() {
  std::printf(
      "Decision quality: Algorithm 1 (O(n) topological search) vs "
      "DADS-style min cut (general DAG cuts), k = 1, 8 Mbps\n\n");
  Table table({"model", "n", "Alg.1 p", "Alg.1 latency(ms)",
               "min-cut latency(ms)", "gap"});
  for (const auto& name : models::zoo_names()) {
    const auto& profile = profile_of(name);
    const auto linear = core::decide(profile, 1.0, mbps(8));
    const auto cut = core::dads_min_cut(profile, 1.0, mbps(8));
    const double gap =
        (linear.predicted_latency - cut.latency_sec) /
        std::max(cut.latency_sec, 1e-12);
    table.add_row({name, std::to_string(profile.n()),
                   std::to_string(linear.p),
                   Table::num(linear.predicted_latency * 1e3),
                   Table::num(cut.latency_sec * 1e3),
                   Table::num(gap * 100.0, 3) + "%"});
  }
  table.print();
  std::printf(
      "\nPaper's claim: interior cuts never win on these architectures, so "
      "the gap is ~0 while the linear search is orders of magnitude "
      "faster (timings below).\n\n");
}

void bm_algorithm1(benchmark::State& state) {
  const auto names = models::zoo_names();
  const auto& profile =
      profile_of(names[static_cast<std::size_t>(state.range(0))]);
  for (auto _ : state) {
    const auto d = core::decide(profile, 3.0, mbps(8));
    benchmark::DoNotOptimize(d.p);
  }
  state.SetLabel(names[static_cast<std::size_t>(state.range(0))] +
                 " n=" + std::to_string(profile.n()));
}

void bm_dads_min_cut(benchmark::State& state) {
  const auto names = models::zoo_names();
  const auto& profile =
      profile_of(names[static_cast<std::size_t>(state.range(0))]);
  for (auto _ : state) {
    const auto d = core::dads_min_cut(profile, 3.0, mbps(8));
    benchmark::DoNotOptimize(d.latency_sec);
  }
  state.SetLabel(names[static_cast<std::size_t>(state.range(0))] +
                 " n=" + std::to_string(profile.n()));
}

}  // namespace

BENCHMARK(bm_algorithm1)->DenseRange(0, 9);
BENCHMARK(bm_dads_min_cut)->DenseRange(0, 9);

int main(int argc, char** argv) {
  report_equivalence();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
