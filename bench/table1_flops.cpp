// Table I: FLOPs formulas of the 8 typical computation-node kinds,
// evaluated on representative nodes drawn from the model zoo.
#include <cstdio>

#include "common/table.h"
#include "flops/flops.h"
#include "models/zoo.h"

int main() {
  using namespace lp;
  using flops::ModelKind;

  std::printf("Table I: FLOPs of typical computation nodes "
              "(sample nodes from the zoo)\n\n");
  Table table({"kind", "formula", "example node", "in", "out", "FLOPs"});

  struct FormulaRow {
    ModelKind kind;
    const char* formula;
  };
  const FormulaRow formulas[] = {
      {ModelKind::kConv, "N*C_in*H_out*W_out*K_H*K_W*C_out"},
      {ModelKind::kDWConv, "N*C_in*H_out*W_out*K_H*K_W"},
      {ModelKind::kMatMul, "N*C_in*C_out"},
      {ModelKind::kMaxPool, "N*C_out*H_out*W_out*K_H*K_W"},
      {ModelKind::kAvgPool, "N*C_out*H_out*W_out*K_H*K_W"},
      {ModelKind::kBiasAdd, "prod(S_i)"},
      {ModelKind::kAdd, "prod(S_i)"},
      {ModelKind::kBatchNorm, "prod(S_i)"},
      {ModelKind::kRelu, "prod(S_i)"},
  };

  // Pull one example node of each kind out of the zoo.
  for (const auto& row : formulas) {
    bool found = false;
    for (const auto& name : models::zoo_names()) {
      if (found) break;
      const auto g = models::make_model(name);
      for (graph::NodeId id : g.backbone()) {
        const auto& node = g.node(id);
        if (flops::model_kind(node.op) != row.kind) continue;
        const auto cfg = flops::config_of(g, id);
        table.add_row({flops::model_kind_name(row.kind), row.formula,
                       name + "/" + node.name, cfg.in.to_string(),
                       cfg.out.to_string(),
                       std::to_string(flops::flops_of(cfg))});
        found = true;
        break;
      }
    }
  }
  table.print();

  std::printf("\nTable-I FLOPs totals per zoo model\n");
  Table totals({"model", "n (backbone)", "GFLOPs (MAC convention)",
                "params (M)"});
  for (const auto& name : models::zoo_names()) {
    const auto g = models::make_model(name);
    totals.add_row(
        {name, std::to_string(g.n()),
         Table::num(static_cast<double>(flops::graph_flops(g)) / 1e9),
         Table::num(static_cast<double>(g.parameter_bytes()) / 4e6)});
  }
  totals.print();
  return 0;
}
