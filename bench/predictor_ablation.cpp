// Forecast-driven k ablation: the reactive default (last-value, exactly the
// paper's behavior) against every registered load forecaster, on two
// workloads where they can differ:
//
//   * fig9  — the paper's single-client SqueezeNet run under the Figure 9
//     server-load ramp (shared schedule: load_schedule.h). Load moves in
//     30-40 s regimes, so one-gap-ahead forecasts have visible structure.
//   * bursty — a fleet of LoADPart clients whose arrival processes are
//     Markov-modulated (calm <-> burst), producing load swings faster than
//     the clients' k-refresh period. A forecaster that extrapolates the
//     ramp sheds earlier and partitions more conservatively than reactive
//     k, which always acts on the load of the *previous* refresh.
//
// Each arm reports its latency profile plus the predictor's self-scored
// forecast MAE/bias. A determinism section re-runs the reactive arm twice
// (same seed) to show the record streams stay bit-identical. --smoke
// shrinks the runs for CI; the JSON (BENCH_predictor.json) carries the
// headline claim: at least one forecaster beats reactive k on bursty p90
// latency AND SLO-miss rate.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "core/system.h"
#include "load_schedule.h"
#include "models/zoo.h"
#include "obs/report.h"
#include "predict/load_predictor.h"
#include "serve/fleet.h"

namespace {

using namespace lp;

std::string arm_label(const std::string& kind) {
  return kind == "last-value" ? "reactive (last-value)" : kind;
}

// ------------------------------------------------------------- fig9 --

struct Fig9Stats {
  double mean_ms = 0.0;
  double p90_ms = 0.0;
  double max_ms = 0.0;
  double mae = 0.0;
  double bias = 0.0;
  std::uint64_t scored = 0;
};

Fig9Stats run_fig9_arm(const core::PredictorBundle& bundle,
                       const std::string& kind, bool smoke) {
  static const graph::Graph model = models::make_model("squeezenet");
  core::ExperimentConfig config;
  config.policy = core::Policy::kLoadPart;
  config.load_schedule = benchutil::fig9_schedule();
  config.duration = smoke ? seconds(90) : benchutil::kFig9Duration;
  config.warmup = seconds(1);
  config.seed = 31;
  config.runtime.predictor.kind = kind;
  const auto result = core::run_experiment(model, bundle, config);
  Fig9Stats out;
  out.mean_ms = result.mean_latency_sec() * 1e3;
  out.p90_ms = result.percentile_latency_sec(90) * 1e3;
  out.max_ms = result.max_latency_sec() * 1e3;
  out.mae = result.predict_mae;
  out.bias = result.predict_bias;
  out.scored = result.predict_scored;
  return out;
}

// ------------------------------------------------------------ bursty --

struct BurstyStats {
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double slo_miss_rate = 0.0;
  double shed_rate = 0.0;
  double mae = 0.0;
  double bias = 0.0;
  std::uint64_t scored = 0;
};

/// Markov-modulated fleet: every client flips between a calm state (mean
/// gap 50 ms) and a burst state (mean gap 3 ms) with sticky transition
/// probabilities, so the offered load swings on a multi-second timescale —
/// faster than the 2 s k-refresh the clients run, which is exactly the
/// regime where a forecast differs from the last published value.
serve::FleetConfig bursty_config(const std::string& kind, bool smoke) {
  serve::FleetConfig config;
  config.duration = smoke ? seconds(24) : seconds(90);
  config.warmup = smoke ? seconds(6) : seconds(15);
  config.seed = 11;
  config.profiler_period = seconds(2);
  config.frontend.policy = serve::QueuePolicy::kEdf;
  config.frontend.admission_control = true;
  config.frontend.delay_budget_sec = 0.5;
  config.runtime.predictor.kind = kind;
  serve::TenantSpec spec;
  spec.model = "alexnet";
  spec.clients = 32;
  spec.policy = core::Policy::kLoadPart;
  spec.upload = net::BandwidthTrace::constant(mbps(100));
  spec.download = net::BandwidthTrace::constant(mbps(100));
  spec.request_gap = milliseconds(50);
  spec.poisson_arrivals = true;
  spec.burst_gap = milliseconds(3);
  spec.burst_enter_prob = 0.01;  // calm lasts ~5 s of requests
  spec.burst_exit_prob = 0.002;  // bursts last ~1.5 s of requests
  spec.slo_sec = 0.325;
  config.tenants.push_back(spec);
  return config;
}

BurstyStats bursty_stats(const serve::FleetResult& result) {
  BurstyStats out;
  std::vector<double> ms;
  for (const auto* rec : result.steady()) ms.push_back(rec->total_sec * 1e3);
  if (!ms.empty()) {
    out.p50_ms = percentile(ms, 50);
    out.p90_ms = percentile(ms, 90);
  }
  const auto s = result.summarize();
  out.slo_miss_rate = s.slo_miss_rate;
  out.shed_rate = s.shed_rate;
  out.mae = result.frontend.predict_mae;
  out.bias = result.frontend.predict_bias;
  out.scored = result.frontend.predict_scored;
  return out;
}

bool identical_records(const serve::FleetResult& a,
                       const serve::FleetResult& b) {
  if (a.clients.size() != b.clients.size()) return false;
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    const auto& ra = a.clients[i].records;
    const auto& rb = b.clients[i].records;
    if (ra.size() != rb.size()) return false;
    for (std::size_t j = 0; j < ra.size(); ++j)
      if (ra[j].start != rb[j].start || ra[j].p != rb[j].p ||
          ra[j].total_sec != rb[j].total_sec ||
          ra[j].outcome != rb[j].outcome)
        return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_predictor.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      out_path = argv[i];
  }

  const auto bundle = core::train_default_predictors();
  const auto kinds = predict::registered_predictors();
  obs::Report report("predictor_ablation");

  // --- Scenario A: the paper's load ramp, one client. -----------------
  std::printf(
      "Predictor ablation A: SqueezeNet under the Figure 9 load ramp "
      "(%s)\n\n",
      smoke ? "smoke: 90 s" : "280 s");
  auto& fig9_section = report.section(
      "fig9", {"predictor", "mean_ms", "p90_ms", "max_ms", "forecast_mae",
               "forecast_bias", "forecasts_scored"});
  Table fig9_table({"predictor", "mean(ms)", "p90(ms)", "max(ms)", "MAE",
                    "bias", "scored"});
  for (const auto& kind : kinds) {
    const Fig9Stats s = run_fig9_arm(bundle, kind, smoke);
    fig9_table.add_row({arm_label(kind), Table::num(s.mean_ms),
                        Table::num(s.p90_ms), Table::num(s.max_ms),
                        Table::num(s.mae, 3), Table::num(s.bias, 3),
                        std::to_string(s.scored)});
    fig9_section.add_row({arm_label(kind), s.mean_ms, s.p90_ms, s.max_ms,
                          s.mae, s.bias, s.scored});
  }
  fig9_table.print();
  std::printf("\n");

  // --- Scenario B: the bursty Markov-modulated fleet. -----------------
  std::printf(
      "Predictor ablation B: 32 LoADPart AlexNet clients, "
      "Markov-modulated arrivals (calm 50 ms <-> burst 3 ms), SLO 325 ms, "
      "EDF + admission (500 ms budget)\n\n");
  auto& bursty_section = report.section(
      "bursty", {"predictor", "p50_ms", "p90_ms", "slo_miss_rate",
                 "shed_rate", "forecast_mae", "forecast_bias",
                 "forecasts_scored"});
  Table bursty_table({"predictor", "p50(ms)", "p90(ms)", "SLO miss", "shed",
                      "MAE", "bias", "scored"});
  BurstyStats reactive;
  std::vector<std::pair<std::string, BurstyStats>> forecasters;
  for (const auto& kind : kinds) {
    const auto result = serve::run_fleet(bursty_config(kind, smoke), bundle);
    const BurstyStats s = bursty_stats(result);
    bursty_table.add_row(
        {arm_label(kind), Table::num(s.p50_ms), Table::num(s.p90_ms),
         Table::num(s.slo_miss_rate * 100.0, 1) + "%",
         Table::num(s.shed_rate * 100.0, 1) + "%", Table::num(s.mae, 3),
         Table::num(s.bias, 3), std::to_string(s.scored)});
    bursty_section.add_row({arm_label(kind), s.p50_ms, s.p90_ms,
                            s.slo_miss_rate, s.shed_rate, s.mae, s.bias,
                            s.scored});
    if (kind == "last-value")
      reactive = s;
    else
      forecasters.emplace_back(kind, s);
  }
  bursty_table.print();

  int p90_wins = 0, slo_wins = 0, both_wins = 0;
  std::string best_predictor = "none";
  double best_p90 = 0.0;
  for (const auto& [kind, s] : forecasters) {
    const bool p90_win = s.p90_ms < reactive.p90_ms;
    const bool slo_win = s.slo_miss_rate < reactive.slo_miss_rate;
    p90_wins += p90_win;
    slo_wins += slo_win;
    if (p90_win && slo_win) {
      ++both_wins;
      if (best_predictor == "none" || s.p90_ms < best_p90) {
        best_predictor = kind;
        best_p90 = s.p90_ms;
      }
    }
  }
  std::printf(
      "\nvs reactive: %d/%zu forecasters win p90, %d/%zu win SLO miss, "
      "%d win both (best: %s)\n\n",
      p90_wins, forecasters.size(), slo_wins, forecasters.size(), both_wins,
      best_predictor.c_str());

  // --- Determinism: the default arm re-run bit-identically. -----------
  const auto det_a =
      serve::run_fleet(bursty_config("last-value", true), bundle);
  const auto det_b =
      serve::run_fleet(bursty_config("last-value", true), bundle);
  const bool deterministic = identical_records(det_a, det_b);
  std::printf("Determinism: reactive arm re-run with seed 11 -> %s\n",
              deterministic ? "bit-identical" : "DIVERGED");

  report.set("predictors", static_cast<std::int64_t>(kinds.size()));
  report.set("bursty_p90_wins", p90_wins);
  report.set("bursty_slo_wins", slo_wins);
  report.set("bursty_both_wins", both_wins);
  report.set("forecast_beats_reactive", both_wins > 0);
  report.set("best_predictor", best_predictor);
  report.set("reactive_p90_ms", reactive.p90_ms);
  report.set("reactive_slo_miss_rate", reactive.slo_miss_rate);
  report.set("deterministic", deterministic);
  report.write_json(out_path);
  report.maybe_write_csv_env();
  return 0;
}
