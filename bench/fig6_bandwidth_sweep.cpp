// Figure 6: LoADPart's end-to-end latency and chosen partition point for
// the six evaluation DNNs while the upload bandwidth follows the paper's
// sweep 8 -> 4 -> 2 -> 1 -> 2 -> 4 -> 8 -> 16 -> 32 -> 64 Mbps.
#include <cstdio>

#include <algorithm>
#include <map>

#include "common/table.h"
#include "series_report.h"
#include "core/system.h"
#include "models/zoo.h"

int main() {
  using namespace lp;
  using core::ExperimentConfig;

  const auto bundle = core::train_default_predictors();
  const DurationNs phase = seconds(30);
  const double sweep[] = {8, 4, 2, 1, 2, 4, 8, 16, 32, 64};

  std::printf(
      "Figure 6: LoADPart under the bandwidth sweep (idle server; one row "
      "per 20 s phase; p = modal partition point in the phase, n = local)\n\n");

  for (const auto& name : models::evaluation_names()) {
    const auto model = models::make_model(name);
    ExperimentConfig config;
    config.upload = net::BandwidthTrace::fig6_sweep(phase);
    config.duration = phase * 10;
    config.warmup = 0;
    config.seed = 7;
    const auto result = core::run_experiment(model, bundle, config);
    benchutil::maybe_dump_series("fig6_" + name, result);

    std::printf("%s (n = %zu)\n", name.c_str(), model.n());
    Table table({"upload", "p (modal)", "decision", "mean(ms)", "max(ms)",
                 "inferences"});
    for (int ph = 0; ph < 10; ++ph) {
      const TimeNs begin = ph * phase;
      const TimeNs end = begin + phase;
      std::map<std::size_t, int> counts;
      double total = 0.0, worst = 0.0;
      int count = 0;
      for (const auto& r : result.records) {
        if (r.start < begin || r.start >= end) continue;
        ++counts[r.p];
        total += r.total_sec;
        worst = std::max(worst, r.total_sec);
        ++count;
      }
      if (count == 0) {
        table.add_row({Table::num(sweep[ph], 0) + " Mbps", "-",
                       "(inference in flight)", "-", "-", "0"});
        continue;
      }
      std::size_t modal = 0;
      int best = -1;
      for (const auto& [p, c] : counts)
        if (c > best) {
          best = c;
          modal = p;
        }
      const char* decision = modal == 0
                                 ? "full offload"
                                 : (modal == model.n() ? "local" : "partial");
      table.add_row({Table::num(sweep[ph], 0) + " Mbps",
                     std::to_string(modal), decision,
                     Table::num(total / count * 1e3),
                     Table::num(worst * 1e3), std::to_string(count)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): AlexNet p=4/8 at high bandwidth -> 19 -> "
      "local at <=2 Mbps; SqueezeNet partial at 8-32 Mbps, local at 4, "
      "full at 64; VGG16 always full offload; ResNet18/50 and Xception "
      "local-or-full switching with bandwidth.\n");
  return 0;
}
