// Table II: the input features of the prediction models, reproduced by the
// offline feature-selection procedure of Section III-B — score a wider
// candidate set with gradient-boosted-tree importance, keep the top
// features, and compare with the paper's selection.
#include <cstdio>

#include <algorithm>
#include <numeric>

#include "common/table.h"
#include "flops/features.h"
#include "hw/cpu_model.h"
#include "hw/gpu_model.h"
#include "ml/gbt.h"
#include "profile/offline_profiler.h"

int main() {
  using namespace lp;
  using flops::Device;
  using flops::ModelKind;

  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  profile::ProfilerParams params;
  params.samples_per_kind = 500;
  profile::OfflineProfiler profiler(cpu, gpu, params);

  std::printf(
      "Table II: feature selection by GBT importance over the candidate "
      "set\n(selected = Table II features in our implementation)\n\n");

  Table table({"kind", "device", "top candidate features (importance)",
               "selected (Table II)"});
  for (ModelKind kind :
       {ModelKind::kConv, ModelKind::kDWConv, ModelKind::kMatMul,
        ModelKind::kMaxPool, ModelKind::kBiasAdd, ModelKind::kRelu}) {
    for (Device device : {Device::kEdge, Device::kUser}) {
      const auto samples = profiler.profile(kind, device);
      std::vector<std::vector<double>> x;
      std::vector<double> y;
      for (const auto& s : samples) {
        x.push_back(flops::candidate_features_of(s.cfg));
        y.push_back(s.seconds);
      }
      const auto model = ml::Gbt::fit(x, y);
      const auto& imp = model.feature_importance();
      const auto names = flops::candidate_feature_names(kind);

      std::vector<std::size_t> order(imp.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) { return imp[a] > imp[b]; });
      std::string top;
      for (std::size_t i = 0; i < std::min<std::size_t>(4, order.size());
           ++i) {
        if (imp[order[i]] < 0.01) break;
        if (!top.empty()) top += ", ";
        top += names[order[i]] + "(" + Table::num(imp[order[i]], 2) + ")";
      }

      std::string selected;
      for (const auto& n : flops::feature_names(kind, device)) {
        if (!selected.empty()) selected += ", ";
        selected += n;
      }
      table.add_row({flops::model_kind_name(kind),
                     flops::device_name(device), top, selected});
    }
  }
  table.print();
  std::printf(
      "\nReading: high-importance candidates should coincide with the "
      "paper's selected features (FLOPs always dominant; s_f terms for "
      "conv; tensor sizes for pooling/matmul).\n");
  return 0;
}
