// Figure 9: end-to-end latency of the six evaluation DNNs while the server
// computation load ramps 0% -> 30 -> 50 -> 70 -> 90 -> 100%(l) -> 100%(h)
// and then drops back to idle, comparing LoADPart against the Neurosurgeon
// baseline (bandwidth-aware, load-oblivious) at a fixed 8 Mbps uplink.
//
// Emits BENCH_fig9.json through obs::Report (per-phase rows + headline
// scalars); the per-inference CSV series stay gated on LP_CSV_DIR.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "common/table.h"
#include "core/system.h"
#include "load_schedule.h"
#include "models/zoo.h"
#include "obs/report.h"
#include "series_report.h"

namespace {

using namespace lp;

struct PhaseStats {
  double mean_ms = 0.0;
  double max_ms = 0.0;
  std::size_t modal_p = 0;
  int count = 0;
};

PhaseStats stats_in(const core::ExperimentResult& result,
                    const benchutil::LoadPhaseSpan& ph) {
  PhaseStats out;
  std::map<std::size_t, int> counts;
  double total = 0.0;
  for (const auto& r : result.records) {
    if (r.start < ph.begin || r.start >= ph.end) continue;
    total += r.total_sec;
    out.max_ms = std::max(out.max_ms, r.total_sec * 1e3);
    ++counts[r.p];
    ++out.count;
  }
  if (out.count == 0) return out;
  out.mean_ms = total / out.count * 1e3;
  int best = -1;
  for (const auto& [p, c] : counts)
    if (c > best) {
      best = c;
      out.modal_p = p;
    }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto bundle = core::train_default_predictors();
  obs::Report report("fig9_load_timeseries");
  auto& section = report.section(
      "phases", {"model", "phase", "loadpart_mean_ms", "loadpart_p",
                 "baseline_mean_ms", "baseline_p", "reduction"});

  std::printf(
      "Figure 9: latency under the server-load schedule "
      "(8 Mbps uplink, 280 s; baseline = Neurosurgeon)\n\n");

  double squeezenet_avg_reduction = 0.0, squeezenet_max_reduction = 0.0;
  double overall_reduction_sum = 0.0;
  int overall_reduction_count = 0;

  for (const auto& name : models::evaluation_names()) {
    const auto model = models::make_model(name);
    auto run = [&](core::Policy policy) {
      core::ExperimentConfig config;
      config.policy = policy;
      config.load_schedule = benchutil::fig9_schedule();
      config.duration = benchutil::kFig9Duration;
      config.warmup = 0;
      config.seed = 31;
      return core::run_experiment(model, bundle, config);
    };
    const auto lp_result = run(core::Policy::kLoadPart);
    const auto ns_result = run(core::Policy::kNeurosurgeon);
    benchutil::maybe_dump_series("fig9_" + name + "_loadpart", lp_result);
    benchutil::maybe_dump_series("fig9_" + name + "_baseline", ns_result);

    std::printf("%s (n = %zu)\n", name.c_str(), model.n());
    Table table({"load phase", "LoADPart mean(ms)", "p", "baseline mean(ms)",
                 "p", "reduction"});
    double lp_sum = 0.0, ns_sum = 0.0;
    double best_reduction = 0.0;
    int phase_count = 0;
    for (const auto& ph : benchutil::fig9_phases()) {
      const auto lp_stats = stats_in(lp_result, ph);
      const auto ns_stats = stats_in(ns_result, ph);
      std::string reduction = "-";
      double red = 0.0;
      if (lp_stats.count > 0 && ns_stats.count > 0) {
        red = 1.0 - lp_stats.mean_ms / ns_stats.mean_ms;
        reduction = Table::num(red * 100.0, 1) + "%";
        lp_sum += lp_stats.mean_ms;
        ns_sum += ns_stats.mean_ms;
        best_reduction = std::max(best_reduction, red);
        ++phase_count;
      }
      table.add_row({ph.label,
                     lp_stats.count ? Table::num(lp_stats.mean_ms) : "-",
                     lp_stats.count ? std::to_string(lp_stats.modal_p) : "-",
                     ns_stats.count ? Table::num(ns_stats.mean_ms) : "-",
                     ns_stats.count ? std::to_string(ns_stats.modal_p) : "-",
                     reduction});
      section.add_row({name, ph.label, lp_stats.mean_ms,
                       static_cast<std::size_t>(lp_stats.modal_p),
                       ns_stats.mean_ms,
                       static_cast<std::size_t>(ns_stats.modal_p), red});
    }
    table.print();
    const double avg_reduction =
        phase_count > 0 ? (1.0 - lp_sum / ns_sum) : 0.0;
    std::printf("average reduction %.1f%%, best phase %.1f%%\n\n",
                avg_reduction * 100.0, best_reduction * 100.0);
    report.set(name + "_avg_reduction", avg_reduction);
    report.set(name + "_best_reduction", best_reduction);
    if (name == "squeezenet") {
      squeezenet_avg_reduction = avg_reduction;
      squeezenet_max_reduction = best_reduction;
    }
    overall_reduction_sum += avg_reduction;
    ++overall_reduction_count;
  }

  std::printf(
      "SqueezeNet: %.1f%% average / %.1f%% best-phase reduction "
      "(paper: 14.2%% average, 32.3%% max)\n",
      squeezenet_avg_reduction * 100.0, squeezenet_max_reduction * 100.0);
  const double mean_reduction =
      overall_reduction_sum / overall_reduction_count;
  std::printf(
      "Mean reduction across the six DNNs: %.1f%% (several models are "
      "local-only or full-offload-only, matching the paper's flat "
      "curves)\n",
      mean_reduction * 100.0);
  report.set("mean_reduction", mean_reduction);
  report.write_json(argc > 1 ? argv[1] : "BENCH_fig9.json");
  report.maybe_write_csv_env();
  return 0;
}
