// Section III-A claim: with the partition cache, the partitioning overhead
// amortized over ~100 offloading requests is about 1% of the inference
// time. Also microbenchmarks the real (host) cost of partition_at and cache
// lookups with google-benchmark.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "common/table.h"
#include "core/system.h"
#include "models/zoo.h"
#include "partition/cache.h"
#include "partition/partitioner.h"

namespace {

using namespace lp;

void report_amortization() {
  const auto bundle = core::train_default_predictors();
  std::printf(
      "Partition cache amortization over a 100-request stream "
      "(8 Mbps, idle server)\n\n");
  Table table({"model", "overhead total(ms)", "inference total(ms)",
               "overhead share", "cache hit rate"});
  for (const char* name : {"alexnet", "squeezenet", "resnet18"}) {
    const auto model = models::make_model(name);
    core::ExperimentConfig config;
    config.duration = seconds(120);
    config.warmup = 0;
    config.request_gap = 0;
    config.seed = 5;
    const auto result = core::run_experiment(model, bundle, config);
    const std::size_t take =
        std::min<std::size_t>(100, result.records.size());
    double overhead = 0.0, total = 0.0;
    for (std::size_t i = 0; i < take; ++i) {
      overhead += result.records[i].overhead_sec;
      total += result.records[i].total_sec;
    }
    table.add_row({name, Table::num(overhead * 1e3),
                   Table::num(total * 1e3),
                   Table::num(overhead / total * 100.0, 2) + "%",
                   Table::num(100.0 * (take - 1.0) / take, 1) + "%"});
  }
  table.print();
  std::printf(
      "\nPaper: overhead ~1%% of inference time amortized over 100 "
      "requests.\n\n");
}

void bm_partition_at(benchmark::State& state) {
  const auto model = models::make_model(
      state.range(0) == 0 ? "alexnet" : "squeezenet");
  const std::size_t p = model.n() / 2;
  for (auto _ : state) {
    auto plan = partition::partition_at(model, p);
    benchmark::DoNotOptimize(plan.boundary_bytes);
  }
}
BENCHMARK(bm_partition_at)->Arg(0)->Arg(1);

void bm_cache_hit(benchmark::State& state) {
  const auto model = models::alexnet();
  partition::PartitionCache cache(8);
  cache.insert(partition::partition_at(model, 8));
  for (auto _ : state) {
    const auto* plan = cache.find(8);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(bm_cache_hit);

}  // namespace

int main(int argc, char** argv) {
  report_amortization();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
