// Extension: device-energy accounting (Neurosurgeon's second objective).
//
// LoADPart minimizes latency only; this bench measures what that costs in
// device energy, and where the energy-optimal cut sits relative to the
// latency-optimal one across bandwidths. Waiting for the server draws
// less power than computing, so the energy optimum offloads *more*
// aggressively than the latency optimum — most visibly at low bandwidth,
// where latency-optimal LoADPart runs locally and burns several times the
// energy of an energy-aware cut. Runs through the serving FleetDriver as a
// one-client fleet per (bandwidth, policy) cell.
#include <cstdio>

#include "common/table.h"
#include "core/energy.h"
#include "serve/fleet.h"

int main() {
  using namespace lp;

  const auto bundle = core::train_default_predictors();
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  const hw::EnergyModel energy;

  std::printf(
      "Device energy per inference (measured over 30 s runs, idle "
      "server)\n\n");
  for (const char* name : {"alexnet", "squeezenet"}) {
    const auto model = models::make_model(name);
    std::printf("%s\n", name);
    Table table({"upload", "policy", "mean(ms)", "energy(J)",
                 "p (modal)", "energy-optimal p (oracle)"});
    for (double bw : {2.0, 8.0, 32.0}) {
      const auto oracle_p = core::energy_optimal_p(model, cpu, gpu, energy,
                                                   mbps(bw), mbps(bw));
      for (core::Policy policy :
           {core::Policy::kLoadPart, core::Policy::kLocalOnly,
            core::Policy::kFullOffload}) {
        serve::FleetConfig config;
        config.duration = seconds(30);
        config.warmup = seconds(5);
        config.seed = 17;
        serve::TenantSpec spec;
        spec.model = name;
        spec.policy = policy;
        spec.upload = net::BandwidthTrace::constant(mbps(bw));
        spec.download = net::BandwidthTrace::constant(mbps(bw));
        spec.request_gap = milliseconds(15);
        config.tenants.push_back(spec);
        const auto result = serve::run_fleet(config, bundle);
        const auto summary = result.summarize(0);
        std::vector<core::InferenceRecord> steady;
        for (const auto* rec : result.steady()) steady.push_back(*rec);
        table.add_row({Table::num(bw, 0) + " Mbps",
                       core::policy_name(policy),
                       Table::num(summary.mean_ms),
                       Table::num(core::mean_energy_joules(steady, energy),
                                  2),
                       std::to_string(summary.modal_p),
                       std::to_string(oracle_p)});
      }
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Reading: waiting is cheaper than computing, so the energy-optimal "
      "cut offloads at least as much as the latency-optimal one. The two "
      "agree at mid/high bandwidth; at 2 Mbps latency-optimal LoADPart "
      "goes local and spends ~4x the energy of the energy-optimal cut — "
      "the trade Neurosurgeon's energy mode exists for, and the one "
      "LoADPart consciously drops.\n");
  return 0;
}
