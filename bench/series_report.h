// Shared helper: publish an experiment's per-inference series through
// obs::Report (replaces the bespoke csv_dump.h plumbing). The CSV form is
// still gated on LP_CSV_DIR — set it to get one <name>_series.csv per
// experiment for external plotting of the time-series figures.
#pragma once

#include <string>

#include "core/system.h"
#include "obs/report.h"

namespace lp::benchutil {

/// Fills `report`'s "series" section with one row per inference record.
inline void fill_series(obs::Report& report,
                        const core::ExperimentResult& result) {
  auto& section = report.section(
      "series", {"t_s", "p", "total_ms", "device_ms", "upload_ms",
                 "server_ms", "download_ms", "k", "bandwidth_mbps"});
  for (const auto& rec : result.records)
    section.add_row({to_seconds(rec.start), rec.p, rec.total_sec * 1e3,
                     rec.device_sec * 1e3, rec.upload_sec * 1e3,
                     rec.server_sec * 1e3, rec.download_sec * 1e3, rec.k_used,
                     rec.bandwidth_est_bps / 1e6});
}

/// Drop-in for the old maybe_dump_series(): writes <name>_series.csv under
/// LP_CSV_DIR when that env var is set, otherwise does nothing.
inline void maybe_dump_series(const std::string& name,
                              const core::ExperimentResult& result) {
  obs::Report report(name);
  fill_series(report, result);
  report.maybe_write_csv_env();
}

}  // namespace lp::benchutil
