// Figure 8: SqueezeNet under different upload bandwidths — LoADPart vs
// local inference vs full offloading. Paper: 7.05x avg / 23.93x max vs
// full, 1.41x avg / 2.53x max vs local.
#include "bandwidth_compare.h"

int main() {
  lp::benchutil::run_bandwidth_comparison("squeezenet", "Figure 8", 7.05,
                                          23.93, 1.41, 2.53);
  return 0;
}
