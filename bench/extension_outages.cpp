// Extension: bursty-link robustness and tail latency.
//
// WiFi quality is bursty in practice. The burst schedule is scripted as a
// FaultPlan: a Gilbert-Elliott degrade schedule (good 16 Mbps base trace,
// 0.5 Mbps bursts) plus one hard blackout window where the link is down
// entirely. Clients run with the fault-tolerance layer on (1 s RPC
// timeout, one retry, local fallback), so a request caught inside a burst
// or the blackout recovers on the device instead of hanging. The
// interesting metrics are the tail — a latency-SLO miss rate per policy —
// and what recovery costs: the SLO-miss rate among recovered-locally
// requests in the last column. LoADPart's probing estimator detects bursts
// and retreats to local inference, bounding the tail near the local
// latency; static offloading policies take the full hit. Runs through the
// serving FleetDriver as a one-client fleet per policy.
#include <algorithm>
#include <cstdio>

#include "common/table.h"
#include "hw/cpu_model.h"
#include "serve/fleet.h"

int main() {
  using namespace lp;

  const auto bundle = core::train_default_predictors();
  const DurationNs total = seconds(300);

  // The fault schedule every policy rides: bursty degrades plus one hard
  // 12 s blackout at 210 s.
  fault::FaultPlan faults = fault::FaultPlan::gilbert_elliott_link(
      total, mbps(0.5), seconds(25), seconds(8), 99);
  faults.link_blackout(seconds(210), seconds(222));

  std::printf(
      "Bursty link (Gilbert-Elliott fault plan: 16 Mbps good / 0.5 Mbps "
      "bursts, mean dwell 25 s / 8 s, hard blackout 210-222 s), idle "
      "server, 300 s\nRecovery: 1 s RPC timeout, 1 retry, local "
      "fallback\n\n");

  for (const char* name : {"alexnet", "squeezenet"}) {
    const auto model = models::make_model(name);
    std::printf("%s (SLO = 1.5x local latency)\n", name);
    const double local_ms =
        to_seconds(hw::CpuModel().graph_time(model)) * 1e3;
    const double slo_ms = 1.5 * local_ms;

    Table table({"policy", "mean(ms)", "p99(ms)", "max(ms)", "SLO misses",
                 "local share", "recovered", "rec. SLO miss"});
    for (core::Policy policy :
         {core::Policy::kLoadPart, core::Policy::kNeurosurgeon,
          core::Policy::kLocalOnly, core::Policy::kFullOffload}) {
      serve::FleetConfig config;
      config.duration = total;
      config.warmup = seconds(10);
      config.profiler_period = seconds(2);
      config.seed = 41;
      config.faults = faults;
      config.runtime.fault.rpc_timeout_sec = 1.0;
      config.runtime.fault.max_retries = 1;
      config.runtime.fault.local_fallback = true;
      serve::TenantSpec spec;
      spec.model = name;
      spec.policy = policy;
      spec.upload = net::BandwidthTrace::constant(mbps(16));
      spec.request_gap = milliseconds(15);
      spec.slo_sec = slo_ms * 1e-3;
      config.tenants.push_back(spec);
      const auto result = serve::run_fleet(config, bundle);

      int misses = 0, local_count = 0, count = 0;
      int recovered = 0, recovered_misses = 0;
      std::vector<double> latencies;
      double worst_ms = 0.0;
      for (const auto* rec : result.steady()) {
        ++count;
        const double ms = rec->total_sec * 1e3;
        latencies.push_back(ms);
        worst_ms = std::max(worst_ms, ms);
        if (ms > slo_ms) ++misses;
        if (rec->p == model.n()) ++local_count;
        if (rec->outcome == core::InferenceOutcome::kRecoveredLocal) {
          ++recovered;
          if (ms > slo_ms) ++recovered_misses;
        }
      }
      table.add_row(
          {core::policy_name(policy), Table::num(mean_of(latencies)),
           Table::num(percentile(latencies, 99)), Table::num(worst_ms),
           Table::num(100.0 * misses / std::max(count, 1), 1) + "%",
           Table::num(100.0 * local_count / std::max(count, 1), 0) + "%",
           std::to_string(recovered),
           Table::num(100.0 * recovered_misses / std::max(recovered, 1),
                      1) +
               "%"});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Reading: during bursts the estimator converges within a couple of "
      "probe periods and LoADPart rides them out locally; full offloading "
      "eats multi-second uploads, and Neurosurgeon behaves like LoADPart "
      "here because bandwidth awareness (not load awareness) is what "
      "bursts exercise. Requests caught mid-burst or in the blackout "
      "recover on the device: they complete (nothing hangs or drops) but "
      "usually blow the SLO — recovery is continuity, not speed.\n");
  return 0;
}
