// Extension: bursty-link robustness and tail latency.
//
// WiFi quality is bursty in practice; a Gilbert-Elliott two-state channel
// alternates a good link (16 Mbps) with degradation bursts (0.5 Mbps).
// The interesting metric is the tail: a latency-SLO miss rate per policy.
// LoADPart's probing estimator detects bursts and retreats to local
// inference, bounding the tail near the local latency; static offloading
// policies take the full hit. Runs through the serving FleetDriver as a
// one-client fleet per policy.
#include <algorithm>
#include <cstdio>

#include "common/table.h"
#include "hw/cpu_model.h"
#include "serve/fleet.h"

int main() {
  using namespace lp;

  const auto bundle = core::train_default_predictors();
  const DurationNs total = seconds(300);

  std::printf(
      "Bursty link (Gilbert-Elliott: 16 Mbps good / 0.5 Mbps bursts, mean "
      "dwell 25 s / 8 s), idle server, 300 s\n\n");

  for (const char* name : {"alexnet", "squeezenet"}) {
    const auto model = models::make_model(name);
    std::printf("%s (SLO = 1.5x local latency)\n", name);
    const double local_ms =
        to_seconds(hw::CpuModel().graph_time(model)) * 1e3;
    const double slo_ms = 1.5 * local_ms;

    Table table({"policy", "mean(ms)", "p99(ms)", "max(ms)",
                 "SLO misses", "local share"});
    for (core::Policy policy :
         {core::Policy::kLoadPart, core::Policy::kNeurosurgeon,
          core::Policy::kLocalOnly, core::Policy::kFullOffload}) {
      serve::FleetConfig config;
      config.duration = total;
      config.warmup = seconds(10);
      config.profiler_period = seconds(2);
      config.seed = 41;
      serve::TenantSpec spec;
      spec.model = name;
      spec.policy = policy;
      spec.upload = net::BandwidthTrace::gilbert_elliott(
          total, mbps(16), mbps(0.5), seconds(25), seconds(8), 99);
      spec.request_gap = milliseconds(15);
      config.tenants.push_back(spec);
      const auto result = serve::run_fleet(config, bundle);

      int misses = 0, local_count = 0, count = 0;
      std::vector<double> latencies;
      double worst_ms = 0.0;
      for (const auto* rec : result.steady()) {
        ++count;
        const double ms = rec->total_sec * 1e3;
        latencies.push_back(ms);
        worst_ms = std::max(worst_ms, ms);
        if (ms > slo_ms) ++misses;
        if (rec->p == model.n()) ++local_count;
      }
      table.add_row(
          {core::policy_name(policy), Table::num(mean_of(latencies)),
           Table::num(percentile(latencies, 99)), Table::num(worst_ms),
           Table::num(100.0 * misses / std::max(count, 1), 1) + "%",
           Table::num(100.0 * local_count / std::max(count, 1), 0) + "%"});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Reading: during bursts the estimator converges within a couple of "
      "probe periods and LoADPart rides them out locally; full offloading "
      "eats multi-second uploads, and Neurosurgeon behaves like LoADPart "
      "here because bandwidth awareness (not load awareness) is what "
      "bursts exercise.\n");
  return 0;
}
