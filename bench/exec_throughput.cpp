// Execution-engine throughput: every evaluation model end-to-end and at its
// LoADPart-chosen cut (best latency_breakdown point at 8 Mbps, the Fig. 1
// setup), reference vs optimized kernels at 1/2/4/8 threads. Reports
// ms/inference, peak resident tensor bytes (liveness), speedups, and checks
// the optimized output is bit-identical before trusting any timing. Writes
// the machine-readable summary to BENCH_exec.json (or argv[1]).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "common/check.h"
#include "common/table.h"
#include "core/baselines.h"
#include "exec/interpreter.h"
#include "graph/graph.h"
#include "models/zoo.h"
#include "partition/partitioner.h"

namespace {

using lp::Table;
using lp::exec::ExecMode;
using lp::exec::Interpreter;
using lp::exec::Options;
using lp::exec::RunStats;
using lp::exec::Tensor;
using lp::exec::TensorMap;

constexpr int kThreads[] = {1, 2, 4, 8};

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

struct TimedRun {
  double ms = 0.0;
  RunStats stats;
  std::vector<Tensor> out;
};

TimedRun timed_run(const lp::graph::Graph& g, const TensorMap& bind,
                   Options options) {
  Interpreter interp(g, options);
  TimedRun r;
  const double t0 = now_ms();
  r.out = interp.run(bind, &r.stats);
  r.ms = now_ms() - t0;
  return r;
}

/// Bytes if every node output and parameter stayed resident (no liveness).
std::int64_t all_resident_bytes(const lp::graph::Graph& g) {
  std::int64_t bytes = 0;
  for (const auto& node : g.nodes()) bytes += node.output.bytes();
  return bytes;
}

struct ModelReport {
  std::string name;
  double reference_ms = 0.0;
  double optimized_ms[4] = {0, 0, 0, 0};
  std::int64_t peak_resident_bytes = 0;
  std::int64_t all_bytes = 0;
  std::size_t best_cut = 0;
  double cut_device_ms = 0.0;
  double cut_server_ms = 0.0;
  bool bit_identical = true;
};

ModelReport bench_model(const std::string& name) {
  const auto g = lp::models::make_model(name);
  const auto input = lp::exec::random_tensor(g.input_desc().shape, 2026);
  const TensorMap bind = {{g.node(g.input_id()).name, input}};

  ModelReport rep;
  rep.name = name;
  rep.all_bytes = all_resident_bytes(g);

  const auto ref = timed_run(g, bind, {ExecMode::kReference, 1});
  rep.reference_ms = ref.ms;

  for (int t = 0; t < 4; ++t) {
    const auto opt = timed_run(g, bind, {ExecMode::kOptimized, kThreads[t]});
    rep.optimized_ms[t] = opt.ms;
    if (t == 0) rep.peak_resident_bytes = opt.stats.peak_resident_bytes;
    for (std::size_t i = 0; i < ref.out.size(); ++i)
      if (Tensor::max_abs_diff(opt.out[i], ref.out[i]) != 0.0)
        rep.bit_identical = false;
  }

  // The LoADPart-chosen cut at the Fig. 1 operating point (idle server,
  // 8 Mbps both ways): run both halves optimized and check the partitioned
  // pipeline stays bit-identical too.
  const lp::hw::CpuModel cpu;
  const lp::hw::GpuModel gpu;
  const auto rows =
      lp::core::latency_breakdown(g, cpu, gpu, lp::mbps(8), lp::mbps(8));
  std::size_t best = 0;
  for (std::size_t p = 0; p < rows.size(); ++p)
    if (rows[p].total_sec < rows[best].total_sec) best = p;
  rep.best_cut = best;

  const auto plan = lp::partition::partition_at(g, best);
  const Options opt1{ExecMode::kOptimized, 1};
  TensorMap boundary;
  std::vector<Tensor> out;
  if (plan.device_part.has_value()) {
    Interpreter device(*plan.device_part, opt1);
    const double t0 = now_ms();
    auto produced = device.run(bind);
    rep.cut_device_ms = now_ms() - t0;
    const auto names = device.output_names();
    for (std::size_t i = 0; i < names.size(); ++i)
      boundary.emplace(names[i], std::move(produced[i]));
  } else {
    boundary = bind;
  }
  if (plan.server_part.has_value()) {
    const double t0 = now_ms();
    out = Interpreter(*plan.server_part, opt1).run(boundary);
    rep.cut_server_ms = now_ms() - t0;
  } else {
    for (auto& [bname, tensor] : boundary) out.push_back(std::move(tensor));
  }
  for (std::size_t i = 0; i < ref.out.size(); ++i)
    if (Tensor::max_abs_diff(out[i], ref.out[i]) != 0.0)
      rep.bit_identical = false;
  return rep;
}

struct ConvReport {
  std::string name;
  double reference_ms = 0.0;
  double optimized_ms = 0.0;
};

/// Each AlexNet Conv layer as a standalone graph: the per-kernel speedup
/// claim without pools/FC diluting it.
std::vector<ConvReport> bench_alexnet_convs() {
  const auto g = lp::models::alexnet();
  std::vector<ConvReport> reports;
  for (lp::graph::NodeId id : g.backbone()) {
    const auto& node = g.node(id);
    if (node.op != lp::graph::OpType::kConv) continue;
    const auto& a = std::get<lp::graph::ConvAttrs>(node.attrs);
    const auto& in_shape = g.node(node.inputs[0]).output.shape;

    lp::graph::GraphBuilder b("conv-" + node.name);
    auto x = b.input(in_shape);
    auto y = b.conv2d_rect(x, a.out_channels, a.kernel_h, a.kernel_w,
                           a.stride_h, a.pad_h, a.pad_w,
                           /*with_bias=*/false, "c");
    const auto layer = b.build(y);
    const TensorMap bind = {
        {"input", lp::exec::random_tensor(in_shape, 77)}};

    ConvReport r;
    r.name = node.name;
    const auto ref = timed_run(layer, bind, {ExecMode::kReference, 1});
    const auto opt = timed_run(layer, bind, {ExecMode::kOptimized, 1});
    LP_CHECK_MSG(
        lp::exec::Tensor::max_abs_diff(opt.out[0], ref.out[0]) == 0.0,
        "conv layer diverged from reference");
    r.reference_ms = ref.ms;
    r.optimized_ms = opt.ms;
    reports.push_back(r);
  }
  return reports;
}

void write_json(const std::string& path,
                const std::vector<ModelReport>& models,
                const std::vector<ConvReport>& convs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  LP_CHECK_MSG(f != nullptr, "cannot open " + path);
  std::fprintf(f, "{\n  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"threads\": [1, 2, 4, 8],\n  \"models\": [\n");
  for (std::size_t i = 0; i < models.size(); ++i) {
    const auto& m = models[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"reference_ms\": %.3f,\n"
                 "     \"optimized_ms\": [%.3f, %.3f, %.3f, %.3f],\n"
                 "     \"speedup_1t\": %.2f, \"speedup_4t\": %.2f,\n"
                 "     \"peak_resident_bytes\": %lld, "
                 "\"all_resident_bytes\": %lld,\n"
                 "     \"best_cut_p\": %zu, \"cut_device_ms\": %.3f, "
                 "\"cut_server_ms\": %.3f,\n"
                 "     \"bit_identical\": %s}%s\n",
                 m.name.c_str(), m.reference_ms, m.optimized_ms[0],
                 m.optimized_ms[1], m.optimized_ms[2], m.optimized_ms[3],
                 m.reference_ms / m.optimized_ms[0],
                 m.reference_ms / m.optimized_ms[2],
                 static_cast<long long>(m.peak_resident_bytes),
                 static_cast<long long>(m.all_bytes), m.best_cut,
                 m.cut_device_ms, m.cut_server_ms,
                 m.bit_identical ? "true" : "false",
                 i + 1 < models.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"alexnet_conv_layers\": [\n");
  for (std::size_t i = 0; i < convs.size(); ++i) {
    const auto& c = convs[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"reference_ms\": %.3f, "
                 "\"optimized_ms\": %.3f, \"speedup\": %.2f}%s\n",
                 c.name.c_str(), c.reference_ms, c.optimized_ms,
                 c.reference_ms / c.optimized_ms,
                 i + 1 < convs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_exec.json";

  std::printf(
      "Execution-engine throughput (bit-identity checked), host cores: %u\n"
      "(thread scaling is only visible when the host has that many cores)\n\n",
      std::thread::hardware_concurrency());
  std::vector<ModelReport> models;
  Table table({"model", "reference(ms)", "opt 1t(ms)", "opt 2t", "opt 4t",
               "opt 8t", "speedup 1t", "speedup 4t", "peak MiB",
               "no-liveness MiB", "exact"});
  for (const auto& name : lp::models::evaluation_names()) {
    models.push_back(bench_model(name));
    const auto& m = models.back();
    table.add_row(
        {m.name, Table::num(m.reference_ms), Table::num(m.optimized_ms[0]),
         Table::num(m.optimized_ms[1]), Table::num(m.optimized_ms[2]),
         Table::num(m.optimized_ms[3]),
         Table::num(m.reference_ms / m.optimized_ms[0]),
         Table::num(m.reference_ms / m.optimized_ms[2]),
         Table::num(static_cast<double>(m.peak_resident_bytes) / (1 << 20)),
         Table::num(static_cast<double>(m.all_bytes) / (1 << 20)),
         m.bit_identical ? "yes" : "NO"});
  }
  table.print();

  std::printf(
      "\nLoADPart-chosen cut (idle server, 8 Mbps): optimized halves\n");
  Table cut({"model", "p", "device(ms)", "server(ms)"});
  for (const auto& m : models)
    cut.add_row({m.name, std::to_string(m.best_cut),
                 Table::num(m.cut_device_ms), Table::num(m.cut_server_ms)});
  cut.print();

  std::printf("\nAlexNet Conv layers standalone (1 thread)\n");
  const auto convs = bench_alexnet_convs();
  Table conv_table({"layer", "reference(ms)", "optimized(ms)", "speedup"});
  for (const auto& c : convs)
    conv_table.add_row({c.name, Table::num(c.reference_ms),
                        Table::num(c.optimized_ms),
                        Table::num(c.reference_ms / c.optimized_ms)});
  conv_table.print();

  write_json(out_path, models, convs);
  std::printf("\n[summary written to %s]\n", out_path.c_str());

  bool all_exact = true;
  for (const auto& m : models) all_exact = all_exact && m.bit_identical;
  return all_exact ? 0 : 1;
}
