// Figure 1: end-to-end latency of AlexNet at every partition point,
// 8 Mbps up/down, idle server — stacked into device / network / server
// components. Also prints the Table IV testbed the simulation models.
#include <cstdio>

#include "common/table.h"
#include "core/baselines.h"
#include "models/zoo.h"

int main() {
  using namespace lp;

  const auto model = models::alexnet();
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  const hw::GpuSchedulerParams sched;

  std::printf(
      "Table IV (simulated testbed)\n"
      "  Edge server     : Tesla T4-class GPU model (%.1f TMAC/s eff., "
      "%.0f GB/s, %.0f us op dispatch, %.0f ms time slice)\n"
      "  User-end device : Raspberry Pi 4-class CPU model (%.1f GMAC/s "
      "eff. conv, %.1f GB/s memory)\n"
      "  Network         : WiFi link model, 8 Mbps up / 8 Mbps down\n\n",
      gpu.params().mac_per_sec / 1e12, gpu.params().mem_bytes_per_sec / 1e9,
      gpu.params().framework_dispatch_sec * 1e6,
      sched.time_slice_sec * 1e3, cpu.params().conv_mac_per_sec / 1e9,
      cpu.params().mem_bytes_per_sec / 1e9);
  const auto rows =
      core::latency_breakdown(model, cpu, gpu, mbps(8), mbps(8));

  std::size_t best = 0;
  for (std::size_t p = 0; p < rows.size(); ++p)
    if (rows[p].total_sec < rows[best].total_sec) best = p;

  std::printf("Figure 1: AlexNet end-to-end latency per partition point\n");
  Table table({"p", "after node", "device(ms)", "network(ms)", "server(ms)",
               "total(ms)", ""});
  for (const auto& row : rows) {
    const auto& node = model.node(model.backbone()[row.p]);
    table.add_row({std::to_string(row.p), node.name,
                   Table::num(row.device_sec * 1e3),
                   Table::num((row.upload_sec + row.download_sec) * 1e3),
                   Table::num(row.server_sec * 1e3),
                   Table::num(row.total_sec * 1e3),
                   row.p == best ? "<- best" : ""});
  }
  table.print();

  const double vs_full = rows.front().total_sec / rows[best].total_sec;
  const double vs_local = rows.back().total_sec / rows[best].total_sec;
  std::printf(
      "\nBest cut p=%zu (%s): %.2fx faster than full offloading, "
      "%.0f%% faster than local inference\n",
      best, model.node(model.backbone()[best]).name.c_str(), vs_full,
      (1.0 - 1.0 / vs_local) * 100.0);
  std::printf(
      "Paper reports: best after MaxPool-2, up to 4x vs full offloading, "
      "30%% vs local.\n");
  return 0;
}
