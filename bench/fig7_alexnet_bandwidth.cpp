// Figure 7: AlexNet under different upload bandwidths — LoADPart vs local
// inference vs full offloading. Paper: 6.96x avg / 21.98x max vs full,
// 1.75x avg / 3.37x max vs local.
#include "bandwidth_compare.h"

int main() {
  lp::benchutil::run_bandwidth_comparison("alexnet", "Figure 7", 6.96,
                                          21.98, 1.75, 3.37);
  return 0;
}
