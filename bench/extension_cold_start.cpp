// Extension: cold-start offloading (the IONN problem, Section VI).
//
// The paper assumes every model's parameters are pre-deployed on the edge
// server. Without that, the first request at a new partition point must
// ship the suffix's weights over the uplink first — which is why IONN
// exists. This bench quantifies the gap on our testbed.
#include <cstdio>

#include "common/table.h"
#include "core/system.h"
#include "models/zoo.h"

int main() {
  using namespace lp;

  const auto bundle = core::train_default_predictors();

  std::printf(
      "Cold-start offloading at 8 Mbps: first request ships the suffix "
      "weights (IONN setting) vs pre-deployed weights (the paper's "
      "setting)\n\n");
  Table table({"model", "params(MB)", "first request cold(s)",
               "weights upload(s)", "steady(ms)", "requests to amortize"});
  for (const char* name : {"squeezenet", "resnet18", "alexnet"}) {
    const auto model = models::make_model(name);
    core::ExperimentConfig config;
    config.duration = seconds(400);
    config.warmup = 0;
    config.seed = 13;
    config.runtime.weights_preloaded = false;
    const auto cold = core::run_experiment(model, bundle, config);

    config.runtime.weights_preloaded = true;
    const auto warm = core::run_experiment(model, bundle, config);

    const auto& first = cold.records.front();
    const double steady_ms = warm.mean_latency_sec() * 1e3;
    const double extra = first.total_sec - steady_ms / 1e3;
    table.add_row(
        {name,
         Table::num(static_cast<double>(model.parameter_bytes()) / 1e6, 1),
         Table::num(first.total_sec, 1),
         Table::num(first.weight_upload_sec, 1), Table::num(steady_ms),
         Table::num(extra / (steady_ms / 1e3), 0)});
  }
  table.print();
  std::printf(
      "\nReading: a 8 Mbps uplink needs ~1 s per MB of weights, so "
      "weight-heavy suffixes cost hundreds of steady-state inferences "
      "before offloading pays off — the pre-deployment assumption the "
      "paper makes, and the incremental-upload scheduling IONN adds when "
      "it cannot be made.\n");
  return 0;
}
