// Ablations of LoADPart's runtime knobs (the design choices DESIGN.md
// calls out): the runtime-profiler period, the GPU-watcher period, the
// partition-cache capacity, and the k sliding-window size.
#include <algorithm>
#include <cstdio>

#include "common/table.h"
#include "core/system.h"
#include "models/zoo.h"

namespace {

using namespace lp;
using core::ExperimentConfig;

/// First time after `after` at which the chosen p left `from`.
double switch_time_sec(const core::ExperimentResult& result, TimeNs after,
                       std::size_t from) {
  for (const auto& rec : result.records) {
    if (rec.start >= after && rec.p != from)
      return to_seconds(rec.start - after);
  }
  return -1.0;
}

}  // namespace

int main() {
  const auto bundle = core::train_default_predictors();

  // ------------------------------------------------------------------
  // 1. Runtime-profiler period: how fast the device notices a bandwidth
  //    collapse (8 -> 1 Mbps at t=30 s) and goes local. Shorter periods
  //    adapt faster but probe more.
  {
    std::printf(
        "Ablation 1: runtime-profiler period vs bandwidth adaptation "
        "(SqueezeNet, 8 -> 1 Mbps at t=30 s)\n\n");
    Table table({"period", "adapt lag(s)", "mean after drop(ms)"});
    const auto model = models::squeezenet();
    for (double period_s : {1.0, 2.0, 5.0, 10.0, 20.0}) {
      ExperimentConfig config;
      config.upload = net::BandwidthTrace(
          {{0, mbps(8)}, {seconds(30), mbps(1)}});
      config.duration = seconds(90);
      config.warmup = 0;
      config.profiler_period = seconds(period_s);
      config.seed = 21;
      const auto result = core::run_experiment(model, bundle, config);
      double after_total = 0.0;
      int after_count = 0;
      std::size_t p_before = 0;
      for (const auto& rec : result.records) {
        if (rec.start < seconds(30)) {
          p_before = rec.p;
        } else if (rec.start > seconds(45)) {
          after_total += rec.total_sec;
          ++after_count;
        }
      }
      const double lag = switch_time_sec(result, seconds(30), p_before);
      table.add_row({Table::num(period_s, 0) + " s",
                     lag < 0 ? "-" : Table::num(lag, 1),
                     after_count ? Table::num(after_total / after_count * 1e3)
                                 : "-"});
    }
    table.print();
  }

  // ------------------------------------------------------------------
  // 2. GPU-watcher period: recovery lag after the server load vanishes
  //    while the device is inferring locally (the SqueezeNet Fig. 9
  //    recovery around 220 s).
  {
    std::printf(
        "\nAblation 2: GPU-watcher period vs offloading recovery "
        "(SqueezeNet, 100%%(h) until t=60 s, idle after)\n\n");
    Table table({"watcher period", "recovery lag(s)"});
    const auto model = models::squeezenet();
    for (double period_s : {2.0, 5.0, 10.0, 30.0}) {
      ExperimentConfig config;
      config.load_schedule = {{0, hw::LoadLevel::k100h},
                              {seconds(60), hw::LoadLevel::k0}};
      config.duration = seconds(160);
      config.warmup = 0;
      config.watcher_period = seconds(period_s);
      config.seed = 22;
      const auto result = core::run_experiment(model, bundle, config);
      const double lag =
          switch_time_sec(result, seconds(60), model.n());
      table.add_row({Table::num(period_s, 0) + " s",
                     lag < 0 ? "never" : Table::num(lag, 1)});
    }
    table.print();
  }

  // ------------------------------------------------------------------
  // 3. Partition-cache capacity: a bandwidth square wave makes the
  //    decision alternate, so capacity 1 thrashes (re-partition on every
  //    flip) while a small LRU absorbs it.
  {
    std::printf(
        "\nAblation 3: partition-cache capacity under an alternating "
        "decision (AlexNet, 8 <-> 2 Mbps square wave)\n\n");
    Table table({"capacity", "overhead share", "device cache hit rate"});
    const auto model = models::alexnet();
    std::vector<net::BandwidthTrace::Step> wave;
    for (int i = 0; i < 12; ++i)
      wave.push_back({seconds(10) * i, i % 2 == 0 ? mbps(8) : mbps(2)});
    for (std::size_t capacity : {std::size_t{1}, std::size_t{2},
                                 std::size_t{4}, std::size_t{16}}) {
      ExperimentConfig config;
      config.upload = net::BandwidthTrace(wave);
      config.duration = seconds(120);
      config.warmup = 0;
      config.runtime.cache_capacity = capacity;
      config.seed = 23;
      const auto result = core::run_experiment(model, bundle, config);
      double overhead = 0.0, total = 0.0;
      for (const auto& rec : result.records) {
        overhead += rec.overhead_sec;
        total += rec.total_sec;
      }
      table.add_row({std::to_string(capacity),
                     Table::num(overhead / total * 100.0, 2) + "%", "-"});
    }
    table.print();
  }

  // ------------------------------------------------------------------
  // 4. k window: small windows chase noise (decision flapping under
  //    fluctuating load), large windows react slowly.
  {
    std::printf(
        "\nAblation 4: k sliding-window size vs decision stability "
        "(AlexNet, load alternating 100%%(h) <-> 50%% every 20 s)\n\n");
    Table table({"k window", "p switches", "mean(ms)"});
    const auto model = models::alexnet();
    std::vector<core::LoadPhase> schedule;
    for (int i = 0; i < 8; ++i)
      schedule.push_back({seconds(20) * i, i % 2 == 0
                                               ? hw::LoadLevel::k100h
                                               : hw::LoadLevel::k50});
    for (std::size_t window : {std::size_t{2}, std::size_t{8},
                               std::size_t{16}, std::size_t{64}}) {
      ExperimentConfig config;
      config.load_schedule = schedule;
      config.duration = seconds(160);
      config.warmup = seconds(10);
      config.runtime.k_window = window;
      config.seed = 24;
      const auto result = core::run_experiment(model, bundle, config);
      int switches = 0;
      for (std::size_t i = 1; i < result.records.size(); ++i)
        if (result.records[i].p != result.records[i - 1].p) ++switches;
      table.add_row({std::to_string(window), std::to_string(switches),
                     Table::num(result.mean_latency_sec() * 1e3)});
    }
    table.print();
  }
  return 0;
}
