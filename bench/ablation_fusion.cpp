// Ablation (extension; Section VI): framework operator fusion.
//
// NN-Meter's observation, reproduced on our substrate: when the inference
// framework fuses Conv/MatMul with their BiasAdd/BatchNorm/activation
// epilogues, (a) the server executes far fewer kernels, and (b) summing
// single-layer predictions layer-by-layer overpredicts — a fusion-aware
// predictor (one anchor prediction per fused group) stays accurate.
#include <cmath>
#include <cstdio>

#include "common/table.h"
#include "core/predictor.h"
#include "graph/fusion.h"
#include "hw/gpu_model.h"
#include "models/zoo.h"

int main() {
  using namespace lp;

  const auto bundle = core::train_default_predictors();
  const hw::GpuModel gpu;

  std::printf(
      "Operator fusion ablation (server side, idle GPU)\n\n"
      "Execution: one kernel per fusion group instead of per node.\n");
  Table exec_table({"model", "nodes", "fused kernels", "unfused(ms)",
                    "fused(ms)", "speedup"});
  for (const auto& name : models::zoo_names()) {
    const auto g = models::make_model(name);
    const auto groups = graph::fuse_groups(g);
    const double unfused =
        to_seconds(gpu.segment_time(g, 0, g.backbone().size() - 1));
    const double fused =
        to_seconds(gpu.fused_segment_time(g, 0, g.backbone().size() - 1));
    exec_table.add_row({name, std::to_string(g.n()),
                        std::to_string(groups.size()),
                        Table::num(unfused * 1e3),
                        Table::num(fused * 1e3),
                        Table::num(unfused / fused, 2) + "x"});
  }
  exec_table.print();

  std::printf(
      "\nPrediction on a fusing framework: layer-by-layer summing vs "
      "fusion-aware (anchor-only) prediction, kernel time only.\n");
  Table pred_table({"model", "truth(ms)", "sum-of-layers(ms)", "err",
                    "fusion-aware(ms)", "err"});
  for (const auto& name : models::zoo_names()) {
    const auto g = models::make_model(name);
    const std::size_t n = g.n();
    const auto groups = graph::fuse_groups(g);
    const double truth =
        to_seconds(gpu.fused_segment_time(g, 0, n)) -
        gpu.params().framework_dispatch_sec *
            static_cast<double>(groups.size());
    double naive = 0.0;
    for (std::size_t i = 1; i <= n; ++i)
      naive +=
          bundle.edge.predict_seconds(flops::config_of(g, g.backbone()[i]));
    const double fused = core::fused_edge_prediction(g, bundle.edge, 1, n);
    auto err = [&](double v) {
      return Table::num(std::abs(v - truth) / truth * 100.0, 1) + "%";
    };
    pred_table.add_row({name, Table::num(truth * 1e3, 2),
                        Table::num(naive * 1e3, 2), err(naive),
                        Table::num(fused * 1e3, 2), err(fused)});
  }
  pred_table.print();
  std::printf(
      "\nReading: fusion cuts the executed kernel count roughly in half "
      "(speedup ~1.6-2.3x, mostly dispatch savings). On prediction, "
      "summing every layer over-counts the fused epilogues — the error "
      "NN-Meter flags — and anchor-only prediction removes it where "
      "element-wise epilogues dominate (VGG16, Xception). Where the "
      "per-anchor conv error dominates (ResNets), neither estimator is "
      "accurate without fused-layer *profiling*, which is exactly the "
      "extension the paper sketches in Section VI: detect fused layers, "
      "then train LR models for them with the same three-step procedure.\n");
  return 0;
}
