// Shared helper: dump an experiment's per-inference series as CSV when
// LP_CSV_DIR is set (for external plotting of the time-series figures).
#pragma once

#include <cstdio>
#include <string>

#include "common/csv.h"
#include "common/table.h"
#include "core/system.h"

namespace lp::benchutil {

inline void maybe_dump_series(const std::string& name,
                              const core::ExperimentResult& result) {
  const auto dir = csv_dir_from_env();
  if (!dir) return;
  CsvWriter csv(*dir, name,
                {"t_s", "p", "total_ms", "device_ms", "upload_ms",
                 "server_ms", "download_ms", "k", "bandwidth_mbps"});
  for (const auto& rec : result.records) {
    csv.add_row({Table::num(to_seconds(rec.start), 3),
                 std::to_string(rec.p), Table::num(rec.total_sec * 1e3, 3),
                 Table::num(rec.device_sec * 1e3, 3),
                 Table::num(rec.upload_sec * 1e3, 3),
                 Table::num(rec.server_sec * 1e3, 3),
                 Table::num(rec.download_sec * 1e3, 3),
                 Table::num(rec.k_used, 3),
                 Table::num(rec.bandwidth_est_bps / 1e6, 3)});
  }
  std::printf("[series written to %s]\n", csv.path().c_str());
}

}  // namespace lp::benchutil
