// Deadline-centric scheduling bench: how much tardiness each queue policy
// leaves on the table, and what slack-aware dispatch + will-miss shedding
// buy on top.
//
// Workload: two periodic tasksets (AlexNet and SqueezeNet Neurosurgeon
// clients with fixed think times and per-tenant SLOs) plus the
// Markov-modulated heavy-traffic LoADPart tenant the predictor ablation
// introduced (calm 50 ms <-> burst 3 ms). Three load levels scale the
// periodic think times from near-capacity to overload.
//
// Arms: every queue policy (FIFO / EDF / SPJF / least-slack) twice — once
// plain, once with deadline admission + will-miss shedding. Reported per
// arm: deadline-miss ratio (failures count as misses, as does any request
// finishing past its SLO) and tardiness percentiles (lateness past the
// SLO, completed requests only). A determinism section re-runs one shedding
// arm twice with the same seed. The JSON (BENCH_tardiness.json) carries the
// headline claim: least-slack + shedding beats plain EDF on both miss
// ratio and tardiness p90 at two or more load levels. --smoke shrinks the
// runs for CI.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "core/system.h"
#include "models/zoo.h"
#include "obs/report.h"
#include "serve/fleet.h"

namespace {

using namespace lp;

struct LoadLevel {
  std::string name;
  double gap_scale;  ///< multiplier on the periodic tenants' think times
};

struct Arm {
  std::string policy_name;
  serve::QueuePolicy policy;
  bool shedding;
};

std::string arm_label(const Arm& arm) {
  return arm.policy_name + (arm.shedding ? "+shed" : "");
}

serve::FleetConfig taskset_config(const Arm& arm, const LoadLevel& level,
                                  bool smoke) {
  serve::FleetConfig config;
  config.duration = smoke ? seconds(16) : seconds(45);
  config.warmup = smoke ? seconds(4) : seconds(9);
  config.seed = 23;
  config.profiler_period = seconds(2);
  config.frontend.policy = arm.policy;
  config.frontend.queue_capacity = 64;
  config.frontend.deadline_admission = arm.shedding;
  config.frontend.shed_will_miss = arm.shedding;

  // Periodic taskset A: AlexNet Neurosurgeon clients, 450 ms SLO.
  serve::TenantSpec alex;
  alex.model = "alexnet";
  alex.clients = 12;
  alex.policy = core::Policy::kNeurosurgeon;
  alex.upload = net::BandwidthTrace::constant(mbps(100));
  alex.download = net::BandwidthTrace::constant(mbps(100));
  alex.request_gap =
      DurationNs(static_cast<std::int64_t>(milliseconds(30) * level.gap_scale));
  alex.slo_sec = 0.45;
  config.tenants.push_back(alex);

  // Periodic taskset B: SqueezeNet Neurosurgeon clients, 450 ms SLO.
  serve::TenantSpec squeeze;
  squeeze.model = "squeezenet";
  squeeze.clients = 8;
  squeeze.policy = core::Policy::kNeurosurgeon;
  squeeze.upload = net::BandwidthTrace::constant(mbps(100));
  squeeze.download = net::BandwidthTrace::constant(mbps(100));
  squeeze.request_gap =
      DurationNs(static_cast<std::int64_t>(milliseconds(45) * level.gap_scale));
  squeeze.slo_sec = 0.45;
  config.tenants.push_back(squeeze);

  // Heavy-traffic tenant: the Markov-modulated LoADPart fleet from the
  // predictor ablation (calm 50 ms <-> burst 3 ms), unscaled — the bursts
  // are the background pressure every level shares.
  serve::TenantSpec bursty;
  bursty.model = "alexnet";
  bursty.clients = 16;
  bursty.policy = core::Policy::kLoadPart;
  bursty.upload = net::BandwidthTrace::constant(mbps(100));
  bursty.download = net::BandwidthTrace::constant(mbps(100));
  bursty.request_gap = milliseconds(50);
  bursty.poisson_arrivals = true;
  bursty.burst_gap = milliseconds(3);
  bursty.burst_enter_prob = 0.01;
  bursty.burst_exit_prob = 0.002;
  bursty.slo_sec = 0.325;
  config.tenants.push_back(bursty);
  return config;
}

struct ArmStats {
  std::size_t requests = 0;
  std::size_t misses = 0;
  double miss_ratio = 0.0;
  double tardy_p50_ms = 0.0;
  double tardy_p90_ms = 0.0;
  double tardy_p99_ms = 0.0;
  std::uint64_t deadline_shed = 0;
  std::uint64_t deadline_shed_admission = 0;
  std::uint64_t shed = 0;
};

/// Miss ratio and tardiness over steady-state records. A request misses
/// when it fails outright or completes past its tenant's SLO; tardiness is
/// the lateness past the SLO (0 for on-time requests), over completed
/// requests only — failures have no completion time to measure.
ArmStats arm_stats(const serve::FleetResult& result) {
  ArmStats out;
  std::vector<double> tardy_ms;
  for (const serve::ClientTrace& trace : result.clients) {
    const double slo = result.tenant_slo_sec[trace.tenant];
    for (const core::InferenceRecord& rec : trace.records) {
      if (rec.start < result.warmup) continue;
      ++out.requests;
      if (rec.outcome == core::InferenceOutcome::kFailed) {
        ++out.misses;
        continue;
      }
      const double tardy_sec = std::max(0.0, rec.total_sec - slo);
      tardy_ms.push_back(tardy_sec * 1e3);
      if (tardy_sec > 0.0) ++out.misses;
    }
  }
  if (out.requests > 0)
    out.miss_ratio =
        static_cast<double>(out.misses) / static_cast<double>(out.requests);
  if (!tardy_ms.empty()) {
    out.tardy_p50_ms = percentile(tardy_ms, 50);
    out.tardy_p90_ms = percentile(tardy_ms, 90);
    out.tardy_p99_ms = percentile(tardy_ms, 99);
  }
  out.deadline_shed = result.frontend.deadline_shed;
  out.deadline_shed_admission = result.frontend.deadline_shed_admission;
  out.shed = result.frontend.shed;
  return out;
}

bool identical_records(const serve::FleetResult& a,
                       const serve::FleetResult& b) {
  if (a.clients.size() != b.clients.size()) return false;
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    const auto& ra = a.clients[i].records;
    const auto& rb = b.clients[i].records;
    if (ra.size() != rb.size()) return false;
    for (std::size_t j = 0; j < ra.size(); ++j)
      if (ra[j].start != rb[j].start || ra[j].p != rb[j].p ||
          ra[j].total_sec != rb[j].total_sec ||
          ra[j].outcome != rb[j].outcome ||
          ra[j].last_failure != rb[j].last_failure)
        return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_tardiness.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      out_path = argv[i];
  }

  const std::vector<LoadLevel> levels = {
      {"moderate", 1.6}, {"high", 1.0}, {"overload", 0.6}};
  const std::vector<Arm> arms = {
      {"fifo", serve::QueuePolicy::kFifo, false},
      {"fifo", serve::QueuePolicy::kFifo, true},
      {"edf", serve::QueuePolicy::kEdf, false},
      {"edf", serve::QueuePolicy::kEdf, true},
      {"spjf", serve::QueuePolicy::kSpjf, false},
      {"spjf", serve::QueuePolicy::kSpjf, true},
      {"least-slack", serve::QueuePolicy::kLeastSlack, false},
      {"least-slack", serve::QueuePolicy::kLeastSlack, true},
  };

  const auto bundle = core::train_default_predictors();
  obs::Report report("tardiness");
  auto& section = report.section(
      "arms", {"level", "policy", "shedding", "requests", "miss_ratio",
               "tardy_p50_ms", "tardy_p90_ms", "tardy_p99_ms", "deadline_shed",
               "deadline_shed_admission", "shed"});

  std::printf(
      "Tardiness bench: periodic AlexNet/SqueezeNet tasksets + "
      "Markov-modulated LoADPart tenant (%s)\n\n",
      smoke ? "smoke: 16 s" : "45 s");

  int levels_won = 0;
  for (const LoadLevel& level : levels) {
    std::printf("Load level '%s' (periodic gaps x%.1f)\n", level.name.c_str(),
                level.gap_scale);
    Table table({"arm", "requests", "miss", "tardy p50(ms)", "tardy p90(ms)",
                 "tardy p99(ms)", "will-miss shed", "admission shed"});
    ArmStats edf_plain, ls_shed;
    for (const Arm& arm : arms) {
      const auto result =
          serve::run_fleet(taskset_config(arm, level, smoke), bundle);
      const ArmStats s = arm_stats(result);
      table.add_row({arm_label(arm), std::to_string(s.requests),
                     Table::num(s.miss_ratio * 100.0, 1) + "%",
                     Table::num(s.tardy_p50_ms), Table::num(s.tardy_p90_ms),
                     Table::num(s.tardy_p99_ms),
                     std::to_string(s.deadline_shed),
                     std::to_string(s.deadline_shed_admission)});
      section.add_row({level.name, arm.policy_name, arm.shedding,
                       static_cast<std::int64_t>(s.requests), s.miss_ratio,
                       s.tardy_p50_ms, s.tardy_p90_ms, s.tardy_p99_ms,
                       static_cast<std::int64_t>(s.deadline_shed),
                       static_cast<std::int64_t>(s.deadline_shed_admission),
                       static_cast<std::int64_t>(s.shed)});
      if (arm.policy == serve::QueuePolicy::kEdf && !arm.shedding)
        edf_plain = s;
      if (arm.policy == serve::QueuePolicy::kLeastSlack && arm.shedding)
        ls_shed = s;
    }
    table.print();
    const bool won = ls_shed.miss_ratio < edf_plain.miss_ratio &&
                     ls_shed.tardy_p90_ms < edf_plain.tardy_p90_ms;
    levels_won += won;
    std::printf(
        "least-slack+shed vs plain EDF: miss %.1f%% vs %.1f%%, tardy p90 "
        "%.1f ms vs %.1f ms -> %s\n\n",
        ls_shed.miss_ratio * 100.0, edf_plain.miss_ratio * 100.0,
        ls_shed.tardy_p90_ms, edf_plain.tardy_p90_ms,
        won ? "win" : "no win");
    report.set("edf_plain_miss_" + level.name, edf_plain.miss_ratio);
    report.set("ls_shed_miss_" + level.name, ls_shed.miss_ratio);
    report.set("edf_plain_tardy_p90_ms_" + level.name, edf_plain.tardy_p90_ms);
    report.set("ls_shed_tardy_p90_ms_" + level.name, ls_shed.tardy_p90_ms);
  }

  // Determinism: the shedding arm re-run bit-identically with one seed.
  const Arm det_arm{"least-slack", serve::QueuePolicy::kLeastSlack, true};
  const auto det_a =
      serve::run_fleet(taskset_config(det_arm, levels.back(), true), bundle);
  const auto det_b =
      serve::run_fleet(taskset_config(det_arm, levels.back(), true), bundle);
  const bool deterministic = identical_records(det_a, det_b);
  std::printf("Determinism: least-slack+shed re-run with seed 23 -> %s\n",
              deterministic ? "bit-identical" : "DIVERGED");

  report.set("levels", static_cast<std::int64_t>(levels.size()));
  report.set("levels_won", levels_won);
  report.set("ls_shed_beats_edf_plain", levels_won >= 2);
  report.set("deterministic", deterministic);
  report.write_json(out_path);
  report.maybe_write_csv_env();
  return 0;
}
