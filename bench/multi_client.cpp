// Extension experiment: contention from other user devices.
//
// The paper motivates load awareness with edge servers that grow busy as
// more devices offload to them. Here the background load IS other
// LoADPart clients: N devices (each with its own WiFi link, bandwidth
// estimator and per-session k) offload through one serve::EdgeServerFrontend
// sharing one GPU. As N grows, every client's k rises with the frontend
// queue and its partition point retreats toward the device; a
// load-oblivious fleet (Neurosurgeon) keeps offloading into the
// congestion.
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "serve/fleet.h"

namespace {

using namespace lp;

serve::FleetConfig base_config() {
  serve::FleetConfig config;
  config.frontend.policy = serve::QueuePolicy::kFifo;
  config.frontend.queue_capacity = 256;
  config.duration = seconds(90);
  config.warmup = seconds(30);
  config.seed = 1000;
  return config;
}

serve::TenantSummary run_homogeneous(int clients, core::Policy policy,
                                     const core::PredictorBundle& bundle) {
  serve::FleetConfig config = base_config();
  serve::TenantSpec spec;
  spec.model = "alexnet";
  spec.clients = clients;
  spec.policy = policy;
  spec.request_gap = milliseconds(5);
  config.tenants.push_back(spec);
  return serve::run_fleet(config, bundle).summarize(0);
}

/// Heterogeneous fleet: per-model client counts sharing one frontend.
void run_mixed_fleet(const core::PredictorBundle& bundle) {
  serve::FleetConfig config = base_config();
  struct Tenant {
    const char* model;
    int clients;
  };
  const Tenant tenants[] = {
      {"alexnet", 8}, {"squeezenet", 8}, {"vgg16", 4}, {"resnet50", 4}};
  for (const Tenant& tenant : tenants) {
    serve::TenantSpec spec;
    spec.model = tenant.model;
    spec.clients = tenant.clients;
    spec.request_gap = milliseconds(5);
    config.tenants.push_back(spec);
  }
  const auto result = serve::run_fleet(config, bundle);

  std::printf(
      "\nHeterogeneous fleet on one frontend (LoADPart everywhere, 8 Mbps "
      "links): per-tenant steady state\n\n");
  Table table({"tenant", "clients", "mean(ms)", "p (modal)", "k"});
  for (std::size_t t = 0; t < config.tenants.size(); ++t) {
    const auto s = result.summarize(static_cast<int>(t));
    if (s.requests() == 0) continue;
    table.add_row({s.name, std::to_string(config.tenants[t].clients),
                   Table::num(s.mean_ms), std::to_string(s.modal_p),
                   Table::num(s.mean_k, 1)});
  }
  table.print();
  std::printf(
      "Reading: every tenant sees the same congested frontend through its "
      "own session k; the weight-light models retreat toward the device "
      "first while VGG16 (device-hopeless) keeps offloading and absorbs "
      "the queueing.\n");
}

}  // namespace

int main() {
  const auto bundle = core::train_default_predictors();

  std::printf(
      "Multi-client contention: N AlexNet devices offloading through one "
      "edge frontend (8 Mbps each, request every 5 ms; steady state of a "
      "90 s run)\n\n");
  Table table({"clients", "LoADPart mean(ms)", "p90", "p", "k",
               "Neurosurgeon mean(ms)", "p90", "p", "reduction"});
  for (int n : {1, 4, 8, 16, 24, 32}) {
    const auto lp_r = run_homogeneous(n, core::Policy::kLoadPart, bundle);
    const auto ns_r =
        run_homogeneous(n, core::Policy::kNeurosurgeon, bundle);
    table.add_row(
        {std::to_string(n), Table::num(lp_r.mean_ms),
         Table::num(lp_r.p90_ms), std::to_string(lp_r.modal_p),
         Table::num(lp_r.mean_k, 1), Table::num(ns_r.mean_ms),
         Table::num(ns_r.p90_ms), std::to_string(ns_r.modal_p),
         Table::num((1.0 - lp_r.mean_ms / ns_r.mean_ms) * 100.0, 1) + "%"});
  }
  table.print();
  std::printf(
      "\nReading: with few clients both policies offload aggressively; as "
      "the fleet grows, LoADPart's per-session k folds in the frontend "
      "queueing delay and its cut retreats toward the device, while "
      "Neurosurgeon keeps shipping work into the congested queue.\n");
  run_mixed_fleet(bundle);
  return 0;
}
