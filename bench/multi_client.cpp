// Extension experiment: contention from other user devices.
//
// The paper motivates load awareness with edge servers that grow busy as
// more devices offload to them. Here the background load IS other
// LoADPart clients: N devices (each with its own WiFi link, bandwidth
// estimator and k tracker) share one GPU. As N grows, every client's k
// rises and its partition point retreats toward the device; a
// load-oblivious fleet (Neurosurgeon) keeps offloading into the
// congestion.
#include <cstdio>
#include <iterator>
#include <string>
#include <map>
#include <memory>
#include <vector>

#include "common/table.h"
#include "core/offload_runtime.h"
#include "models/zoo.h"

namespace {

using namespace lp;

struct ClientRig {
  std::unique_ptr<net::Link> link;
  std::unique_ptr<core::OffloadServer> server;
  std::unique_ptr<core::OffloadClient> client;
  std::vector<core::InferenceRecord> records;
};

sim::Task request_stream(sim::Simulator& sim, core::OffloadClient& client,
                         std::vector<core::InferenceRecord>& out) {
  for (;;) {
    core::InferenceRecord rec;
    co_await client.infer(&rec);
    out.push_back(rec);
    co_await sim.delay(milliseconds(5));
  }
}

struct FleetResult {
  double mean_ms = 0.0;
  double p90_ms = 0.0;
  std::size_t modal_p = 0;
  double mean_k = 1.0;
};

FleetResult run_fleet(int clients, core::Policy policy,
                      const graph::Graph& model,
                      const core::PredictorBundle& bundle) {
  sim::Simulator sim;
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  hw::GpuScheduler scheduler(sim);
  const core::GraphCostProfile profile(model, bundle);
  core::RuntimeParams params;

  std::vector<ClientRig> rigs(static_cast<std::size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    auto& rig = rigs[static_cast<std::size_t>(i)];
    const auto seed = static_cast<std::uint64_t>(1000 + i);
    rig.link = std::make_unique<net::Link>(
        sim, net::BandwidthTrace::constant(mbps(8)),
        net::BandwidthTrace::constant(mbps(8)), milliseconds(2), seed);
    rig.server = std::make_unique<core::OffloadServer>(
        sim, scheduler, gpu, profile, params, seed ^ 0x5e);
    rig.server->start_gpu_watcher(seconds(10));
    rig.client = std::make_unique<core::OffloadClient>(
        sim, cpu, profile, *rig.link, *rig.server, policy, params,
        seed ^ 0xc1);
    rig.client->start_runtime_profiler(seconds(5));
    sim.spawn(request_stream(sim, *rig.client, rig.records));
  }
  sim.run_until(seconds(90));

  FleetResult result;
  std::vector<double> latencies;
  std::map<std::size_t, int> p_counts;
  double k_total = 0.0;
  std::size_t k_count = 0;
  for (const auto& rig : rigs) {
    for (const auto& rec : rig.records) {
      if (rec.start < seconds(30)) continue;  // settle
      latencies.push_back(rec.total_sec * 1e3);
      ++p_counts[rec.p];
      k_total += rec.k_used;
      ++k_count;
    }
  }
  if (latencies.empty()) return result;
  result.mean_ms = mean_of(latencies);
  result.p90_ms = percentile(latencies, 90);
  int best = -1;
  for (const auto& [p, count] : p_counts)
    if (count > best) {
      best = count;
      result.modal_p = p;
    }
  result.mean_k = k_total / static_cast<double>(k_count);
  return result;
}

}  // namespace

namespace {

/// Heterogeneous fleet: per-model client counts sharing one GPU.
void run_mixed_fleet(const core::PredictorBundle& bundle) {
  using namespace lp;
  struct Tenant {
    const char* model;
    int clients;
  };
  const Tenant tenants[] = {
      {"alexnet", 8}, {"squeezenet", 8}, {"vgg16", 4}, {"resnet50", 4}};

  sim::Simulator sim;
  const hw::CpuModel cpu;
  const hw::GpuModel gpu;
  hw::GpuScheduler scheduler(sim);
  core::RuntimeParams params;

  struct Group {
    std::string name;
    graph::Graph model;
    std::unique_ptr<core::GraphCostProfile> profile;
    std::vector<ClientRig> rigs;
  };
  std::vector<Group> groups;
  groups.reserve(std::size(tenants));
  int seed = 0;
  for (const auto& tenant : tenants) {
    groups.push_back(
        Group{tenant.model, models::make_model(tenant.model), nullptr, {}});
    // The profile points into the group's graph; build it only once the
    // group has its final address.
    auto& group = groups.back();
    group.profile =
        std::make_unique<core::GraphCostProfile>(group.model, bundle);
    group.rigs.resize(static_cast<std::size_t>(tenant.clients));
  }
  for (auto& group : groups) {
    for (auto& rig : group.rigs) {
      const auto s = static_cast<std::uint64_t>(5000 + seed++);
      rig.link = std::make_unique<net::Link>(
          sim, net::BandwidthTrace::constant(mbps(8)),
          net::BandwidthTrace::constant(mbps(8)), milliseconds(2), s);
      rig.server = std::make_unique<core::OffloadServer>(
          sim, scheduler, gpu, *group.profile, params, s ^ 0x5e);
      rig.server->start_gpu_watcher(seconds(10));
      rig.client = std::make_unique<core::OffloadClient>(
          sim, cpu, *group.profile, *rig.link, *rig.server,
          core::Policy::kLoadPart, params, s ^ 0xc1);
      rig.client->start_runtime_profiler(seconds(5));
      sim.spawn(request_stream(sim, *rig.client, rig.records));
    }
  }
  sim.run_until(seconds(90));

  std::printf(
      "\nHeterogeneous fleet on one GPU (LoADPart everywhere, 8 Mbps "
      "links): per-tenant steady state\n\n");
  Table table({"tenant", "clients", "mean(ms)", "p (modal)", "k", "n"});
  for (const auto& group : groups) {
    std::vector<double> latencies;
    std::map<std::size_t, int> p_counts;
    double k_total = 0.0;
    for (const auto& rig : group.rigs) {
      for (const auto& rec : rig.records) {
        if (rec.start < seconds(30)) continue;
        latencies.push_back(rec.total_sec * 1e3);
        ++p_counts[rec.p];
        k_total += rec.k_used;
      }
    }
    if (latencies.empty()) continue;
    std::size_t modal = 0;
    int best = -1;
    for (const auto& [p, c] : p_counts)
      if (c > best) {
        best = c;
        modal = p;
      }
    table.add_row({group.name,
                   std::to_string(group.rigs.size()),
                   Table::num(mean_of(latencies)), std::to_string(modal),
                   Table::num(k_total / static_cast<double>(latencies.size()),
                              1),
                   std::to_string(group.model.n())});
  }
  table.print();
  std::printf(
      "Reading: every tenant sees the same congested GPU through its own "
      "k; the weight-light models retreat toward the device first while "
      "VGG16 (device-hopeless) keeps offloading and absorbs the "
      "queueing.\n");
}

}  // namespace

int main() {
  const auto bundle = core::train_default_predictors();
  const auto model = models::alexnet();

  std::printf(
      "Multi-client contention: N AlexNet devices sharing one edge GPU "
      "(8 Mbps each, request every 5 ms; steady state of a 90 s run)\n\n");
  Table table({"clients", "LoADPart mean(ms)", "p90", "p", "k",
               "Neurosurgeon mean(ms)", "p90", "p", "reduction"});
  for (int n : {1, 4, 8, 16, 24, 32}) {
    const auto lp_r = run_fleet(n, core::Policy::kLoadPart, model, bundle);
    const auto ns_r =
        run_fleet(n, core::Policy::kNeurosurgeon, model, bundle);
    table.add_row(
        {std::to_string(n), Table::num(lp_r.mean_ms),
         Table::num(lp_r.p90_ms), std::to_string(lp_r.modal_p),
         Table::num(lp_r.mean_k, 1), Table::num(ns_r.mean_ms),
         Table::num(ns_r.p90_ms), std::to_string(ns_r.modal_p),
         Table::num((1.0 - lp_r.mean_ms / ns_r.mean_ms) * 100.0, 1) + "%"});
  }
  table.print();
  std::printf(
      "\nReading: with few clients both policies offload aggressively; as "
      "the fleet grows, LoADPart's k rises and its cut retreats toward the "
      "device (p -> 19/27), while Neurosurgeon keeps shipping work into "
      "the congested GPU.\n");
  run_mixed_fleet(bundle);
  return 0;
}
