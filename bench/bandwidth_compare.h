// Shared helper for Figures 7 and 8: compare LoADPart against local
// inference and full offloading across fixed upload bandwidths.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/system.h"
#include "models/zoo.h"

namespace lp::benchutil {

inline void run_bandwidth_comparison(const std::string& model_name,
                                     const char* figure,
                                     double paper_avg_vs_full,
                                     double paper_max_vs_full,
                                     double paper_avg_vs_local,
                                     double paper_max_vs_local) {
  const auto bundle = core::train_default_predictors();
  const auto model = models::make_model(model_name);
  const std::vector<double> bandwidths{1, 2, 4, 8, 16, 32, 64};

  std::printf(
      "%s: %s end-to-end latency — LoADPart vs local inference vs full "
      "offloading (idle server)\n\n",
      figure, model_name.c_str());

  Table table({"upload", "LoADPart(ms)", "p", "local(ms)", "full(ms)",
               "speedup vs local", "speedup vs full"});
  double sum_vs_full = 0.0, max_vs_full = 0.0;
  double sum_vs_local = 0.0, max_vs_local = 0.0;
  for (double bw : bandwidths) {
    auto run = [&](core::Policy policy) {
      core::ExperimentConfig config;
      config.policy = policy;
      config.upload = net::BandwidthTrace::constant(mbps(bw));
      config.duration = seconds(40);
      config.warmup = seconds(8);
      config.seed = 11;
      return core::run_experiment(model, bundle, config);
    };
    const auto lp_result = run(core::Policy::kLoadPart);
    const auto local = run(core::Policy::kLocalOnly);
    const auto full = run(core::Policy::kFullOffload);

    const double lp_ms = lp_result.mean_latency_sec() * 1e3;
    const double local_ms = local.mean_latency_sec() * 1e3;
    const double full_ms = full.mean_latency_sec() * 1e3;
    const double vs_local = local_ms / lp_ms;
    const double vs_full = full_ms / lp_ms;
    sum_vs_full += vs_full;
    max_vs_full = std::max(max_vs_full, vs_full);
    sum_vs_local += vs_local;
    max_vs_local = std::max(max_vs_local, vs_local);

    table.add_row({Table::num(bw, 0) + " Mbps", Table::num(lp_ms),
                   std::to_string(lp_result.modal_p()),
                   Table::num(local_ms), Table::num(full_ms),
                   Table::num(vs_local, 2) + "x",
                   Table::num(vs_full, 2) + "x"});
  }
  table.print();

  const auto n = static_cast<double>(bandwidths.size());
  std::printf(
      "\nSpeedup vs full offloading: %.2fx avg / %.2fx max "
      "(paper: %.2fx / %.2fx)\n",
      sum_vs_full / n, max_vs_full, paper_avg_vs_full, paper_max_vs_full);
  std::printf(
      "Speedup vs local inference: %.2fx avg / %.2fx max "
      "(paper: %.2fx / %.2fx)\n",
      sum_vs_local / n, max_vs_local, paper_avg_vs_local,
      paper_max_vs_local);
}

}  // namespace lp::benchutil
